//! Event-driven execution mode: mailboxes, round reassembly and a
//! conservative completion oracle on top of the [`crate::transport`] plane.
//!
//! The driver replaces the lock-step engine's global round barrier with
//! per-node progress: each node advances through its own round sequence as
//! soon as its [`crate::transport::RoundBuffer`] quorum for the round is
//! met, so different nodes can be in different rounds at the same wall
//! instant and workers run truly concurrently on the [`hinet_rt::pool`].
//!
//! # Equivalence with lock-step
//!
//! Per-sender `(round, seq)` tagging plus the buffer's `(from, seq)` sort
//! reproduce exactly the inbox the lock-step engine would have built, and a
//! node's send for round `r` always runs against its state after its own
//! round `r-1` receive — so every protocol instance evolves round-by-round
//! identically to lock-step. Crash/recovery/re-election decisions are
//! global per-round state; they are built round-sequentially by a shared
//! context server (one [`RoundCtx`] per round, derived from its
//! predecessor's down-state) so they too match lock-step bit for bit.
//!
//! Stopping is detected by an oracle that folds per-node round reports in
//! round order; nodes past the eventually-final stop round ("overshoot")
//! can only be nodes that already know the whole universe, so their extra
//! sends and receives never change any final token set. The one exception
//! — a fault-plane crash injected in an overshoot round, which would
//! forget tokens lock-step never forgot — is repaired after the run by
//! restarting the affected node with the full universe (exactly what it
//! knew when it entered overshoot). Metrics and trace events are buffered
//! per `(node, round)` and merged/replayed in lock-step order for rounds
//! below the final stop, so reports and trace bytes match the lock-step
//! engine exactly (the trace differs only in its `mode` meta stamp and the
//! event-runtime counters).

use crate::engine::{
    note_fault, obs_role, resolve_event_threads, role_slot, MessageRecord, Metrics, NodeStall,
    Outcome, RoundMetrics, RunConfig, RunReport, StallDiag, TokenLatency, WallClock,
};
use crate::fault::FaultPlan;
use crate::protocol::{Destination, LocalView, Payload, Protocol};
use crate::reliable::{ReceiverLedger, ReliableConfig, SenderWindow};
use crate::token::{TokenId, TokenSet};
use crate::transport::{ChannelTransport, Envelope, EnvelopeKind, RoundBuffer, Transport};
use hinet_cluster::clustering::{re_elect, GatewayPolicy};
use hinet_cluster::ctvg::HierarchyProvider;
use hinet_cluster::hierarchy::Hierarchy;
use hinet_graph::csr::CsrGraph;
use hinet_graph::graph::NodeId;
use hinet_graph::Graph;
use hinet_rt::obs::{self, FaultKind, Tracer};
use hinet_rt::pool;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// How long a parked worker sleeps before re-scanning its shard even
/// without a doorbell ring — a liveness safety net, not the fast path.
const PARK_TIMEOUT: Duration = Duration::from_millis(10);

/// Keep at most this many round contexts cached before pruning the ones
/// every node has already passed.
const CTX_CACHE_SOFT_CAP: usize = 64;

/// Per-round global context: topology view, repaired hierarchy and the
/// round's crash/down state, identical to what the lock-step engine
/// computes at the top of its round loop.
struct RoundCtx {
    csr: Arc<CsrGraph>,
    hierarchy: Arc<Hierarchy>,
    /// `down[i]`: node `i` is silent this round (inside a crash window).
    down: Box<[bool]>,
    /// `crashed[i]`: the fault plane crashes node `i` at the start of this
    /// round (the node applies `on_restart` when it reaches the round).
    crashed: Box<[bool]>,
}

/// Per-round builder-side event log, kept for the whole run (unlike the
/// heavyweight [`RoundCtx`]s, which are pruned): everything the trace
/// replay and the crash/recovery counters need.
#[derive(Default)]
struct RoundLog {
    recoveries: Vec<usize>,
    crashes: Vec<usize>,
    /// `(node, old_head, new_head)` — recorded only when tracing.
    reaffs: Vec<(u64, Option<u64>, Option<u64>)>,
}

/// Round-context server: owns the provider and builds [`RoundCtx`]s
/// strictly in round order (crash state is a running fold over rounds).
struct Builder<'p> {
    provider: &'p mut (dyn HierarchyProvider + Send),
    n: usize,
    validate: bool,
    tracing: bool,
    faults: FaultPlan,
    trivial: bool,
    next: usize,
    down_until: Vec<usize>,
    was_down: Vec<bool>,
    prev_heads: Vec<Option<NodeId>>,
    graph_cache: Option<(Arc<Graph>, Arc<CsrGraph>)>,
    ctxs: BTreeMap<usize, Arc<RoundCtx>>,
    logs: Vec<RoundLog>,
}

impl Builder<'_> {
    fn build_next(&mut self) {
        let round = self.next;
        let n = self.n;
        let graph = self.provider.graph_at(round);
        let mut hierarchy = self.provider.hierarchy_at(round);
        if self.validate {
            hierarchy
                .validate(&graph)
                .unwrap_or_else(|e| panic!("round {round}: invalid hierarchy: {e}"));
        }
        let rebuild = self
            .graph_cache
            .as_ref()
            .is_none_or(|(src, _)| !Arc::ptr_eq(src, &graph));
        if rebuild {
            self.graph_cache = Some((Arc::clone(&graph), Arc::new(CsrGraph::from(&*graph))));
        }
        let csr = Arc::clone(&self.graph_cache.as_ref().expect("csr cache primed").1);

        let mut log = RoundLog::default();
        let mut crashed = vec![false; n].into_boxed_slice();
        if !self.trivial {
            for i in 0..n {
                if self.was_down[i] && round >= self.down_until[i] {
                    self.was_down[i] = false;
                    log.recoveries.push(i);
                }
            }
            for i in 0..n {
                if round < self.down_until[i] {
                    continue; // still down; cannot crash again yet
                }
                let me = NodeId::from_index(i);
                if self.faults.crashes(round, i, hierarchy.is_head(me)) {
                    crashed[i] = true;
                    log.crashes.push(i);
                    self.down_until[i] = round + self.faults.down_rounds;
                    self.was_down[i] = true;
                }
            }
        }
        let down: Box<[bool]> = (0..n).map(|i| round < self.down_until[i]).collect();
        if !self.trivial && (0..n).any(|i| down[i] && hierarchy.is_head(NodeId::from_index(i))) {
            hierarchy = Arc::new(re_elect(
                &graph,
                &hierarchy,
                &down,
                GatewayPolicy::default(),
            ));
        }
        if self.tracing {
            let heads: Vec<Option<NodeId>> = (0..n)
                .map(|i| hierarchy.head_of(NodeId::from_index(i)))
                .collect();
            if round > 0 {
                for (i, (old, new)) in self.prev_heads.iter().zip(&heads).enumerate() {
                    if old != new {
                        log.reaffs.push((
                            i as u64,
                            old.map(|h| h.0 as u64),
                            new.map(|h| h.0 as u64),
                        ));
                    }
                }
            }
            self.prev_heads = heads;
        }
        self.logs.push(log);
        self.ctxs.insert(
            round,
            Arc::new(RoundCtx {
                csr,
                hierarchy,
                down,
                crashed,
            }),
        );
        self.next = round + 1;
    }
}

/// One node's contribution to a round, accumulated across its send and
/// receive steps and reported to the oracle once the round is done.
#[derive(Default)]
struct NodeReport {
    tokens: u64,
    packets: u64,
    by_role: [u64; 3],
    dropped_unicasts: u64,
    faults: u64,
    partition: bool,
    retransmits: u64,
    delays: u64,
    dups_injected: u64,
    dups_discarded: u64,
    rt_timeouts: u64,
    informed_start: i64,
    informed_end: i64,
    finished: i64,
    /// Net change in this node's delivery-plane in-flight count (held
    /// delayed envelopes + unacked reliability-window entries) over the
    /// round — the oracle must not declare all-finished while envelopes
    /// that could still inform someone are in the air.
    inflight: i64,
}

/// Oracle bookkeeping for one not-yet-decided round.
#[derive(Default)]
struct PendingRound {
    reports: usize,
    agg: NodeReport,
}

/// The completion oracle: folds per-node round reports in strict round
/// order, reproducing the lock-step engine's end-of-round checks (global
/// completion, then all-finished) and its aggregate metrics.
struct Oracle {
    n: usize,
    next: usize,
    informed: usize,
    finished: usize,
    stopped: bool,
    early_stop: bool,
    rounds_executed: usize,
    completion_round: Option<usize>,
    metrics: Metrics,
    fault_window: Option<(u64, u64)>,
    backbone: bool,
    pending: BTreeMap<usize, PendingRound>,
    record_rounds: bool,
    stop_on_completion: bool,
    /// Running total of delivery-plane in-flight envelopes (held delayed
    /// envelopes + unacked reliability-window entries) across all nodes,
    /// folded from the per-round deltas. All-finished does not stop the
    /// run while this is non-zero.
    inflight: i64,
}

impl Oracle {
    /// Fold `rep` for round `round`; returns `Some(stop_round)` when this
    /// report decided that the run stops (completion or all-finished).
    fn report(&mut self, round: usize, rep: NodeReport) -> Option<usize> {
        let pr = self.pending.entry(round).or_default();
        pr.reports += 1;
        pr.agg.tokens += rep.tokens;
        pr.agg.packets += rep.packets;
        for s in 0..3 {
            pr.agg.by_role[s] += rep.by_role[s];
        }
        pr.agg.dropped_unicasts += rep.dropped_unicasts;
        pr.agg.faults += rep.faults;
        pr.agg.partition |= rep.partition;
        pr.agg.retransmits += rep.retransmits;
        pr.agg.delays += rep.delays;
        pr.agg.dups_injected += rep.dups_injected;
        pr.agg.dups_discarded += rep.dups_discarded;
        pr.agg.rt_timeouts += rep.rt_timeouts;
        pr.agg.informed_start += rep.informed_start;
        pr.agg.informed_end += rep.informed_end;
        pr.agg.finished += rep.finished;
        pr.agg.inflight += rep.inflight;

        let mut stop = None;
        while !self.stopped {
            let ready = self
                .pending
                .get(&self.next)
                .is_some_and(|pr| pr.reports == self.n);
            if !ready {
                break;
            }
            let pr = self.pending.remove(&self.next).expect("pending round");
            let r = self.next;
            let a = pr.agg;
            self.informed = (self.informed as i64 + a.informed_start) as usize;
            let informed_at_start = self.informed;
            self.informed = (self.informed as i64 + a.informed_end) as usize;
            self.finished = (self.finished as i64 + a.finished) as usize;
            let m = &mut self.metrics;
            m.tokens_sent += a.tokens;
            m.packets_sent += a.packets;
            for s in 0..3 {
                m.tokens_by_role[s] += a.by_role[s];
            }
            m.dropped_unicasts += a.dropped_unicasts;
            m.faults_injected += a.faults;
            m.retransmits += a.retransmits;
            m.delays_injected += a.delays;
            m.duplicates_injected += a.dups_injected;
            m.dups_discarded += a.dups_discarded;
            m.retransmit_timeouts += a.rt_timeouts;
            self.inflight += a.inflight;
            if a.faults > 0 {
                note_fault(&mut self.fault_window, r as u64);
            }
            self.backbone |= a.partition;
            if self.record_rounds {
                m.rounds.push(RoundMetrics {
                    tokens_sent: a.tokens,
                    packets_sent: a.packets,
                    informed_nodes: informed_at_start,
                });
            }
            self.rounds_executed = r + 1;
            if self.completion_round.is_none() && self.informed == self.n {
                self.completion_round = Some(r + 1);
                if self.stop_on_completion {
                    self.stopped = true;
                    self.early_stop = true;
                    stop = Some(r);
                }
            }
            if !self.stopped && self.finished == self.n && self.inflight == 0 {
                self.stopped = true;
                self.early_stop = true;
                stop = Some(r);
            }
            self.next = r + 1;
        }
        stop
    }
}

/// Per-shard wakeup latch: workers park on it when their shard has no
/// runnable node; the transport notifier and stop changes ring it.
struct Doorbell {
    epoch: Mutex<u64>,
    cv: Condvar,
}

impl Doorbell {
    fn new() -> Doorbell {
        Doorbell {
            epoch: Mutex::new(0),
            cv: Condvar::new(),
        }
    }

    fn epoch(&self) -> u64 {
        *self.epoch.lock().expect("doorbell lock")
    }

    fn ring(&self) {
        *self.epoch.lock().expect("doorbell lock") += 1;
        self.cv.notify_all();
    }

    /// Park until the epoch moves past `seen` or the timeout elapses.
    fn wait(&self, seen: u64) {
        let mut g = self.epoch.lock().expect("doorbell lock");
        while *g == seen {
            let (next, res) = self
                .cv
                .wait_timeout(g, PARK_TIMEOUT)
                .expect("doorbell lock");
            g = next;
            if res.timed_out() {
                break;
            }
        }
    }
}

/// Buffered trace event, replayed through the real [`Tracer`] after the
/// run in lock-step emission order.
enum BufEvt {
    Broadcast {
        token: u64,
        cost: u64,
        role: obs::Role,
        bytes: u64,
    },
    Push {
        token: u64,
        cost: u64,
        role: obs::Role,
        to: u64,
        bytes: u64,
    },
    Retransmit {
        cost: u64,
        dst: Option<u64>,
    },
    Fault {
        to: u64,
        kind: FaultKind,
    },
    Delayed {
        to: u64,
        rounds: u64,
    },
    Duplicated {
        to: u64,
    },
    RetransmitTimeout {
        to: u64,
        attempt: u32,
    },
}

/// An outgoing envelope the fault plane delayed: it is held at the sender
/// and flushed (with its original `rid`) during the sender's `release`
/// round send step, landing in the receiver's `release`-round inbox.
struct HeldEnvelope {
    release: usize,
    to: NodeId,
    rid: u64,
    payload: Payload,
    directed: bool,
}

/// Per-node runtime state owned by its shard.
struct NodeState {
    round: usize,
    sent: bool,
    stalled: bool,
    done: bool,
    informed: bool,
    finished: bool,
    buffer: RoundBuffer,
    scratch: Vec<Envelope>,
    /// Ever-learned token superset (never shrinks across crashes) — the
    /// per-token latency cover contribution guard.
    learned: TokenSet,
    rep: NodeReport,
    /// Last round in which this node applied a crash restart.
    crashed_at: Option<usize>,
    /// Outgoing envelopes the fault plane delayed, awaiting their release
    /// round.
    held: Vec<HeldEnvelope>,
    /// Reliability sender window — `Some` only when the run is reliable;
    /// carries every unacked envelope and its retransmit timer.
    window: Option<SenderWindow<(Payload, bool)>>,
    /// Reliability receiver ledger: per-sender cumulative-ack state and
    /// rid-level dedup for retransmitted envelopes.
    ledger: ReceiverLedger,
    /// In-flight count (held + window) at the end of the last receive
    /// step, so each round reports a delta to the oracle.
    last_inflight: i64,
    /// Buffered trace events, `(round, events)` ascending.
    evts: Vec<(usize, Vec<BufEvt>)>,
    /// Buffered message records (rounds ascending).
    msgs: Vec<MessageRecord>,
}

impl NodeState {
    fn new() -> NodeState {
        NodeState {
            round: 0,
            sent: false,
            stalled: false,
            done: false,
            informed: false,
            finished: false,
            buffer: RoundBuffer::new(),
            scratch: Vec::new(),
            learned: TokenSet::new(),
            rep: NodeReport::default(),
            crashed_at: None,
            held: Vec::new(),
            window: None,
            ledger: ReceiverLedger::new(),
            last_inflight: 0,
            evts: Vec::new(),
            msgs: Vec::new(),
        }
    }
}

/// A contiguous node range plus its protocol instances — one worker
/// thread's whole world.
struct Shard<'a, P> {
    base: usize,
    protocols: &'a mut [P],
    nodes: Vec<NodeState>,
}

/// Everything the workers share.
struct Shared<'a> {
    server: Mutex<Builder<'a>>,
    oracle: Mutex<Oracle>,
    transport: ChannelTransport,
    doorbells: Arc<Vec<Doorbell>>,
    stop_after: AtomicUsize,
    abort: AtomicBool,
    node_round: Vec<AtomicUsize>,
    stalls: AtomicU64,
    cover: Vec<AtomicUsize>,
    covered_at: Vec<AtomicU64>,
    start: Instant,
    n: usize,
    universe: &'a TokenSet,
    assignment: &'a [Vec<TokenId>],
    faults: &'a FaultPlan,
    trivial: bool,
    tracing: bool,
    record_messages: bool,
    token_bytes: u64,
    packet_header_bytes: u64,
    /// Reliability layer active: acks ride on round markers, unacked
    /// envelopes retransmit on timer (only with a non-trivial fault plan).
    reliable: bool,
    /// Stall watchdog — `Some` when `RunConfig::stall_rounds > 0`.
    watchdog: Option<Mutex<Watchdog>>,
    /// No-progress window before the watchdog fires.
    stall_window: Duration,
    /// Progress epoch: bumped on every completed receive step; the
    /// watchdog re-arms whenever it moves.
    progress: AtomicU64,
    /// Set by the watchdog: workers snapshot stall diagnostics and exit.
    halted: AtomicBool,
    /// Per-node stall diagnostics, recorded by the workers after a halt.
    stall_info: Mutex<Vec<NodeStall>>,
}

/// Stall watchdog state: armed with a deadline one full no-progress window
/// in the future; any quorum progress (a completed receive step anywhere)
/// re-arms it. Probed by workers about to park, so it costs nothing while
/// the run is moving.
struct Watchdog {
    last_epoch: u64,
    deadline: Instant,
}

impl Watchdog {
    fn new(now: Instant, window: Duration) -> Watchdog {
        Watchdog {
            last_epoch: 0,
            deadline: now + window,
        }
    }

    /// Probe with the current progress epoch: `true` when no progress has
    /// been observed for a full window.
    fn probe(&mut self, epoch: u64, now: Instant, window: Duration) -> bool {
        if epoch != self.last_epoch {
            self.last_epoch = epoch;
            self.deadline = now + window;
            return false;
        }
        now >= self.deadline
    }
}

impl Shared<'_> {
    /// Fetch (building as needed) the context for `round`, pruning cached
    /// contexts every node has already passed.
    fn ctx(&self, round: usize) -> Arc<RoundCtx> {
        let mut b = self.server.lock().expect("context server lock");
        while b.next <= round {
            b.build_next();
        }
        if b.ctxs.len() > CTX_CACHE_SOFT_CAP {
            let min = self
                .node_round
                .iter()
                .map(|r| r.load(Ordering::Relaxed))
                .min()
                .unwrap_or(0);
            b.ctxs.retain(|&r, _| r >= min);
        }
        Arc::clone(b.ctxs.get(&round).expect("context just built"))
    }

    fn ring_all(&self) {
        for d in self.doorbells.iter() {
            d.ring();
        }
    }
}

/// Sets the abort flag and wakes every worker if its owner unwinds, so a
/// panicking shard cannot leave its peers parked on quorums that will
/// never arrive.
struct AbortGuard<'s, 'a> {
    shared: &'s Shared<'a>,
}

impl Drop for AbortGuard<'_, '_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.shared.abort.store(true, Ordering::SeqCst);
            self.shared.ring_all();
        }
    }
}

/// Run the event-driven mode. Semantics and reports are identical to the
/// lock-step engine on the same config (see the module docs for the
/// argument); the returned [`RunReport`] additionally carries wall-clock
/// throughput and per-token latency in [`RunReport::wall`].
pub(crate) fn run<P: Protocol + Send>(
    mut cfg: RunConfig<'_>,
    provider: &mut (dyn HierarchyProvider + Send),
    protocols: &mut [P],
    assignment: &[Vec<TokenId>],
) -> RunReport {
    let start = Instant::now();
    let mut disabled = Tracer::disabled();
    let tracer: &mut Tracer = match cfg.tracer.take() {
        Some(t) => t,
        None => &mut disabled,
    };
    let faults = cfg.faults.clone();

    let n = provider.n();
    assert_eq!(protocols.len(), n, "one protocol per node");
    assert_eq!(assignment.len(), n, "one initial token list per node");
    let threads = resolve_event_threads(cfg.threads, n);

    let universe: TokenSet = assignment.iter().flatten().copied().collect();
    let k = universe.len();
    if tracer.enabled() {
        let w = cfg.cost_weights;
        tracer.meta("token_bytes", w.token_bytes.to_string());
        tracer.meta("packet_header_bytes", w.packet_header_bytes.to_string());
        tracer.meta("mode", "event");
    }
    for (i, p) in protocols.iter_mut().enumerate() {
        p.on_start(NodeId::from_index(i), &assignment[i]);
    }

    let trivial = faults.is_trivial();
    let tracing = tracer.enabled();

    // Initial census: informed/finished counts plus the latency cover
    // (how many nodes have ever learned each token).
    let id_space = universe.max().map_or(0, |t| t.0 as usize + 1);
    let mut cover0 = vec![0usize; id_space];
    let mut informed0 = 0usize;
    let mut finished0 = 0usize;
    for p in protocols.iter() {
        informed0 += usize::from(universe.is_subset(p.known()));
        finished0 += usize::from(p.finished());
        for t in p.known() {
            cover0[t.0 as usize] += 1;
        }
    }

    let wall_degenerate = || WallClock {
        elapsed_ns: start.elapsed().as_nanos() as u64,
        tokens_per_sec: 0.0,
        latency: None,
        reassembly_stalls: 0,
        mailbox_depth_max: 0,
    };

    // Degenerate cases the lock-step loop never enters: everyone informed
    // before any round, or a zero round budget.
    if informed0 == n {
        tracer.run_end(0, true);
        return RunReport {
            rounds_executed: 0,
            completion_round: Some(0),
            metrics: Metrics::default(),
            k,
            cost_weights: cfg.cost_weights,
            outcome: Outcome::Completed { round: 0 },
            wall: wall_degenerate(),
            stability: None,
            stall: None,
        };
    }
    if cfg.max_rounds == 0 {
        tracer.run_end(0, false);
        let flat: Vec<&P> = protocols.iter().collect();
        let missing = missing_tokens(&universe, &flat, k);
        return RunReport {
            rounds_executed: 0,
            completion_round: None,
            metrics: Metrics::default(),
            k,
            cost_weights: cfg.cost_weights,
            outcome: Outcome::Stalled {
                missing_tokens: missing,
                budget_exhausted: true,
            },
            wall: wall_degenerate(),
            stability: None,
            stall: None,
        };
    }

    let shard_size = n.div_ceil(threads);
    let doorbells: Arc<Vec<Doorbell>> = Arc::new(
        (0..n.div_ceil(shard_size))
            .map(|_| Doorbell::new())
            .collect(),
    );
    let transport = ChannelTransport::new(n);
    {
        let doorbells = Arc::clone(&doorbells);
        transport.set_notifier(Arc::new(move |node| doorbells[node / shard_size].ring()));
    }

    let shared = Shared {
        server: Mutex::new(Builder {
            provider,
            n,
            validate: cfg.validate_hierarchy,
            tracing,
            faults: faults.clone(),
            trivial,
            next: 0,
            down_until: vec![0; n],
            was_down: vec![false; n],
            prev_heads: Vec::new(),
            graph_cache: None,
            ctxs: BTreeMap::new(),
            logs: Vec::new(),
        }),
        oracle: Mutex::new(Oracle {
            n,
            next: 0,
            informed: informed0,
            finished: finished0,
            stopped: false,
            early_stop: false,
            rounds_executed: 0,
            completion_round: None,
            metrics: Metrics::default(),
            fault_window: None,
            backbone: false,
            pending: BTreeMap::new(),
            record_rounds: cfg.record_rounds,
            stop_on_completion: cfg.stop_on_completion,
            inflight: 0,
        }),
        transport,
        doorbells: Arc::clone(&doorbells),
        stop_after: AtomicUsize::new(cfg.max_rounds - 1),
        abort: AtomicBool::new(false),
        node_round: (0..n).map(|_| AtomicUsize::new(0)).collect(),
        stalls: AtomicU64::new(0),
        cover: cover0.into_iter().map(AtomicUsize::new).collect(),
        covered_at: (0..id_space).map(|_| AtomicU64::new(u64::MAX)).collect(),
        start,
        n,
        universe: &universe,
        assignment,
        faults: &faults,
        trivial,
        tracing,
        record_messages: cfg.record_messages,
        token_bytes: cfg.cost_weights.token_bytes,
        packet_header_bytes: cfg.cost_weights.packet_header_bytes,
        reliable: cfg.reliable && !trivial,
        watchdog: (cfg.stall_rounds > 0).then(|| {
            let window = PARK_TIMEOUT * cfg.stall_rounds as u32;
            Mutex::new(Watchdog::new(Instant::now(), window))
        }),
        stall_window: PARK_TIMEOUT * cfg.stall_rounds.max(1) as u32,
        progress: AtomicU64::new(0),
        halted: AtomicBool::new(false),
        stall_info: Mutex::new(Vec::new()),
    };
    // Tokens fully known at the start are covered at t = 0.
    for t in &universe {
        if shared.cover[t.0 as usize].load(Ordering::Relaxed) == n {
            shared.covered_at[t.0 as usize].store(0, Ordering::Relaxed);
        }
    }

    // Build shards: contiguous node ranges, one worker thread each. Each
    // node carries its per-protocol learned set (seeded from its initial
    // known tokens) into the latency cover diffing.
    let mut shards: Vec<Shard<'_, P>> = Vec::new();
    {
        let mut rest = &mut protocols[..];
        let mut base = 0usize;
        while !rest.is_empty() {
            let take = shard_size.min(rest.len());
            let (chunk, tail) = rest.split_at_mut(take);
            let mut nodes = Vec::with_capacity(take);
            for (j, p) in chunk.iter().enumerate() {
                let mut st = NodeState::new();
                st.learned = p.known().clone();
                st.informed = universe.is_subset(p.known());
                st.finished = p.finished();
                if shared.reliable {
                    // Same per-sender jitter seed derivation as lock-step.
                    let seed =
                        faults.seed ^ ((base + j) as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                    st.window = Some(SenderWindow::new(seed, ReliableConfig::default()));
                }
                nodes.push(st);
            }
            shards.push(Shard {
                base,
                protocols: chunk,
                nodes,
            });
            base += take;
            rest = tail;
        }
    }

    let nshards = shards.len();
    pool::map_mut(&mut shards, nshards, |s, shard| {
        let _guard = AbortGuard { shared: &shared };
        run_shard(&shared, s, shard);
    });

    let elapsed_ns = start.elapsed().as_nanos() as u64;

    // Harvest the oracle: merged metrics for rounds below the stop, the
    // completion verdict, and the loss/partition fault window.
    let oracle = shared.oracle.into_inner().expect("oracle lock");
    let mut metrics = oracle.metrics;
    let rounds_executed = oracle.rounds_executed;
    let completion_round = oracle.completion_round;
    let budget_exhausted = !oracle.early_stop;
    let mut fault_window = oracle.fault_window;
    let mut backbone = oracle.backbone;

    // Crash/recovery counts and the crash side of the fault window come
    // from the builder's per-round logs, clipped to the executed rounds.
    let server = shared.server.into_inner().expect("context server lock");
    for (r, log) in server.logs.iter().enumerate().take(rounds_executed) {
        metrics.crashes += log.crashes.len() as u64;
        metrics.recoveries += log.recoveries.len() as u64;
        if !log.crashes.is_empty() {
            backbone = true;
            note_fault(&mut fault_window, r as u64);
        }
    }

    // Stall-watchdog diagnostics: when the watchdog halted the run short
    // of completion, the workers' per-node snapshots become the report's
    // structured stall diagnosis (frontier rounds, missing quorum senders,
    // oldest unacked envelope ages) plus the fault window for attribution.
    let halted = shared.halted.load(Ordering::SeqCst);
    let mut stall_nodes = shared.stall_info.into_inner().expect("stall info lock");
    stall_nodes.sort_by_key(|s| s.node.index());
    let stall =
        (halted && completion_round.is_none() && !stall_nodes.is_empty()).then(|| StallDiag {
            nodes: stall_nodes,
            fault_window,
        });

    // Overshoot-crash repair: a node restarted by a crash in a round the
    // run turned out not to include had (provably) already learned the
    // whole universe when it entered that round — put it back there.
    if completion_round.is_some() {
        let universe_tokens: Vec<TokenId> = universe.iter().collect();
        for shard in &mut shards {
            for (j, st) in shard.nodes.iter().enumerate() {
                if st.crashed_at.is_some_and(|r| r >= rounds_executed) {
                    let me = NodeId::from_index(shard.base + j);
                    shard.protocols[j].on_restart(me, &universe_tokens);
                }
            }
        }
    }

    // Message-log merge in lock-step order (ascending round, then node),
    // honouring the cap exactly like the lock-step recorder.
    if cfg.record_messages {
        let mut cursors = vec![0usize; n];
        'merge: for r in 0..rounds_executed {
            for shard in &shards {
                for (j, st) in shard.nodes.iter().enumerate() {
                    let c = &mut cursors[shard.base + j];
                    while *c < st.msgs.len() && st.msgs[*c].round == r {
                        if metrics.log.len() >= cfg.message_log_cap {
                            metrics.log_truncated = true;
                            eprintln!(
                                "hinet-sim: message log reached RunConfig::message_log_cap \
                                 ({}); further MessageRecords are dropped — raise the cap or \
                                 disable record_messages for large runs",
                                cfg.message_log_cap
                            );
                            break 'merge;
                        }
                        metrics.log.push(st.msgs[*c].clone());
                        *c += 1;
                    }
                }
            }
        }
    }

    // Trace replay: emit the buffered events through the real tracer in
    // exact lock-step order, so event-mode trace bytes match lock-step.
    if tracing {
        let durable = faults.durable_tokens;
        let mut cursors = vec![0usize; n];
        for r in 0..rounds_executed {
            tracer.round_start(r as u64);
            let log = &server.logs[r];
            for &i in &log.recoveries {
                tracer.recover(r as u64, i as u64);
            }
            for &i in &log.crashes {
                tracer.crash(r as u64, i as u64, durable);
            }
            for &(node, old, new) in &log.reaffs {
                tracer.reaffiliation(r as u64, node, old, new);
            }
            for shard in &shards {
                for (j, st) in shard.nodes.iter().enumerate() {
                    let i = shard.base + j;
                    let c = &mut cursors[i];
                    if *c < st.evts.len() && st.evts[*c].0 == r {
                        for e in &st.evts[*c].1 {
                            replay(tracer, r as u64, i as u64, e);
                        }
                        *c += 1;
                    }
                }
            }
        }
    }
    if tracing {
        if let Some(d) = &stall {
            for ns in &d.nodes {
                tracer.stall_probe(ns.frontier as u64, ns.node.0 as u64);
            }
        }
    }
    tracer.run_end(rounds_executed as u64, completion_round.is_some());
    let stalls = shared.stalls.load(Ordering::Relaxed);
    let depth = shared.transport.max_depth() as u64;
    if tracing {
        tracer.note_runtime(stalls, depth);
        tracer.note_dedup(metrics.dups_discarded);
    }

    // Wall-clock metrics: throughput over the whole execution, per-token
    // cover latency from the stamped completion instants.
    let mut lat: Vec<u64> = universe
        .iter()
        .filter_map(|t| {
            let v = shared.covered_at[t.0 as usize].load(Ordering::Relaxed);
            (v != u64::MAX).then_some(v)
        })
        .collect();
    lat.sort_unstable();
    let latency = (!lat.is_empty()).then(|| TokenLatency {
        covered: lat.len(),
        total: k,
        p50_ns: lat[lat.len() / 2],
        p95_ns: lat[(lat.len() * 95 / 100).min(lat.len() - 1)],
        max_ns: *lat.last().expect("non-empty"),
    });
    let secs = elapsed_ns as f64 / 1e9;
    let wall = WallClock {
        elapsed_ns,
        tokens_per_sec: if secs > 0.0 {
            metrics.tokens_sent as f64 / secs
        } else {
            0.0
        },
        latency,
        reassembly_stalls: stalls,
        mailbox_depth_max: depth,
    };

    let outcome = match completion_round {
        Some(round) => Outcome::Completed { round },
        None => {
            let missing = {
                let mut flat: Vec<&P> = Vec::with_capacity(n);
                for shard in &shards {
                    flat.extend(shard.protocols.iter());
                }
                missing_tokens(&universe, &flat, k)
            };
            if stall.is_some() {
                // The watchdog halted the run: report the stall with its
                // structured diagnosis regardless of injected faults (the
                // diagnosis carries the fault window for attribution).
                Outcome::Stalled {
                    missing_tokens: missing,
                    budget_exhausted: false,
                }
            } else {
                match fault_window {
                    Some(window) => Outcome::AssumptionViolated {
                        window,
                        def: if backbone { 2 } else { 1 },
                    },
                    None => Outcome::Stalled {
                        missing_tokens: missing,
                        budget_exhausted,
                    },
                }
            }
        }
    };
    RunReport {
        rounds_executed,
        completion_round,
        metrics,
        k,
        cost_weights: cfg.cost_weights,
        outcome,
        wall,
        stability: None,
        stall,
    }
}

/// `k` minus the number of tokens known everywhere (the lock-step stall
/// accounting, word-for-word).
fn missing_tokens<P: Protocol>(universe: &TokenSet, protocols: &[&P], k: usize) -> usize {
    let mut everywhere = universe.clone();
    for p in protocols {
        if everywhere.is_empty() {
            break;
        }
        let known = p.known();
        everywhere = everywhere.iter().filter(|t| known.contains(t)).collect();
    }
    k - everywhere.len()
}

/// The worker loop for one shard: repeatedly sweep the shard's nodes,
/// stepping each as far as its quorum allows, parking on the shard
/// doorbell when nothing moved.
fn run_shard<P: Protocol>(shared: &Shared<'_>, s: usize, shard: &mut Shard<'_, P>) {
    loop {
        if shared.abort.load(Ordering::SeqCst) {
            return;
        }
        if shared.halted.load(Ordering::SeqCst) {
            record_stall(shared, shard);
            return;
        }
        let epoch = shared.doorbells[s].epoch();
        let mut progressed = false;
        let mut all_done = true;
        for j in 0..shard.nodes.len() {
            let i = shard.base + j;
            loop {
                if shared.abort.load(Ordering::SeqCst) {
                    return;
                }
                if shard.nodes[j].done {
                    break;
                }
                let r = shard.nodes[j].round;
                if r > shared.stop_after.load(Ordering::SeqCst) {
                    shard.nodes[j].done = true;
                    progressed = true;
                    break;
                }
                let ctx = shared.ctx(r);
                if !shard.nodes[j].sent {
                    step_send(
                        shared,
                        i,
                        r,
                        &ctx,
                        &mut shard.protocols[j],
                        &mut shard.nodes[j],
                    );
                    shard.nodes[j].sent = true;
                    progressed = true;
                }
                let st = &mut shard.nodes[j];
                if shared.transport.drain(i, &mut st.scratch) > 0 {
                    for env in st.scratch.drain(..) {
                        st.buffer.push(env);
                    }
                }
                let quorum = ctx.csr.neighbors(NodeId::from_index(i)).len();
                if !st.buffer.ready(r, quorum) {
                    if !st.stalled {
                        st.stalled = true;
                        shared.stalls.fetch_add(1, Ordering::Relaxed);
                    }
                    break;
                }
                step_recv(
                    shared,
                    i,
                    r,
                    &ctx,
                    &mut shard.protocols[j],
                    &mut shard.nodes[j],
                );
                let st = &mut shard.nodes[j];
                st.round = r + 1;
                st.sent = false;
                st.stalled = false;
                shared.node_round[i].store(st.round, Ordering::Relaxed);
                progressed = true;
            }
            if !shard.nodes[j].done {
                all_done = false;
            }
        }
        if all_done {
            return;
        }
        if !progressed {
            // Probe the stall watchdog before parking: if no receive step
            // completed anywhere for a full window, halt the run and let
            // every worker snapshot its stall diagnostics.
            if let Some(wd) = &shared.watchdog {
                let epoch_now = shared.progress.load(Ordering::Relaxed);
                let fire = wd.lock().expect("watchdog lock").probe(
                    epoch_now,
                    Instant::now(),
                    shared.stall_window,
                );
                if fire {
                    shared.halted.store(true, Ordering::SeqCst);
                    shared.ring_all();
                    continue;
                }
            }
            shared.doorbells[s].wait(epoch);
        }
    }
}

/// Snapshot this shard's unfinished nodes into the shared stall
/// diagnostics: each node's round frontier, the neighbours whose round
/// markers it is still waiting for, and the age of its oldest unacked
/// reliability-window envelope.
fn record_stall<P: Protocol>(shared: &Shared<'_>, shard: &Shard<'_, P>) {
    let mut info = shared.stall_info.lock().expect("stall info lock");
    for (j, st) in shard.nodes.iter().enumerate() {
        if st.done {
            continue;
        }
        let me = NodeId::from_index(shard.base + j);
        let r = st.round;
        let ctx = shared.ctx(r);
        let missing = st.buffer.missing_markers(r, ctx.csr.neighbors(me));
        let oldest_unacked = st
            .window
            .as_ref()
            .and_then(|w| w.oldest_unacked())
            .map(|registered| r.saturating_sub(registered));
        info.push(NodeStall {
            node: me,
            frontier: r,
            missing,
            oldest_unacked,
        });
    }
}

/// A node's round-`r` send step: apply this round's crash (if any), run the
/// protocol's send against the round view, gate every delivery through the
/// fault plane, enqueue payload envelopes, and flush one end-of-round
/// marker per neighbour.
fn step_send<P: Protocol>(
    shared: &Shared<'_>,
    i: usize,
    r: usize,
    ctx: &RoundCtx,
    p: &mut P,
    st: &mut NodeState,
) {
    let me = NodeId::from_index(i);
    if ctx.crashed[i] {
        let retained: Vec<TokenId> = if shared.faults.durable_tokens {
            p.known().iter().collect()
        } else {
            shared.assignment[i].clone()
        };
        p.on_restart(me, &retained);
        st.crashed_at = Some(r);
        let inf = shared.universe.is_subset(p.known());
        st.rep.informed_start += i64::from(inf) - i64::from(st.informed);
        st.informed = inf;
    }
    let neighbors = ctx.csr.neighbors(me);
    let mut evts: Vec<BufEvt> = Vec::new();
    let role = ctx.hierarchy.role(me);
    // Delivery-plane flushes (timer retransmits, matured delayed
    // envelopes) take seq numbers descending from just below the marker
    // sentinel: fresh protocol sends keep the lock-step 0.. numbering (so
    // their delay/dup hash keys match lock-step), and the buffer's
    // `(from, seq)` sort stays collision-free.
    let mut flush_seq = u32::MAX - 1;
    if !ctx.down[i] {
        // Reliability-window timer retransmits: a re-send pays full token
        // cost, keeps its original rid (receiver ledgers dedup), and skips
        // the delay/dup rolls — only the loss gate applies.
        let due = match st.window.as_mut() {
            Some(w) => w.due(r),
            None => Vec::new(),
        };
        for rt in due {
            let v = NodeId::from_index(rt.to);
            if !ctx.csr.has_edge(me, v) {
                continue; // no edge this round; the timer re-fires later
            }
            let (payload, directed) = rt.item;
            let cost = payload.len() as u64;
            st.rep.tokens += cost;
            st.rep.packets += 1;
            st.rep.by_role[role_slot(role)] += cost;
            st.rep.rt_timeouts += 1;
            if shared.tracing {
                evts.push(BufEvt::RetransmitTimeout {
                    to: v.0 as u64,
                    attempt: rt.attempt,
                });
            }
            if !shared.trivial && gated(shared, r, me, v, ctx, st, &mut evts) {
                continue;
            }
            shared.transport.send(Envelope {
                round: r,
                from: me,
                to: v,
                seq: flush_seq,
                kind: EnvelopeKind::Payload {
                    payload,
                    directed,
                    rid: rt.rid,
                },
            });
            flush_seq -= 1;
        }
        // Matured delayed envelopes land in the receiver's current-round
        // inbox; a receiver down at maturity loses them (the reliability
        // layer, when on, recovers by timer).
        if !st.held.is_empty() {
            let held = std::mem::take(&mut st.held);
            for h in held {
                if h.release > r || !ctx.csr.has_edge(me, h.to) {
                    st.held.push(h);
                    continue;
                }
                if ctx.down[h.to.index()] {
                    continue;
                }
                shared.transport.send(Envelope {
                    round: r,
                    from: me,
                    to: h.to,
                    seq: flush_seq,
                    kind: EnvelopeKind::Payload {
                        payload: h.payload,
                        directed: h.directed,
                        rid: h.rid,
                    },
                });
                flush_seq -= 1;
            }
        }
    }
    if !ctx.down[i] && !p.finished() {
        let view = LocalView {
            me,
            round: r,
            role,
            cluster: ctx.hierarchy.cluster_of(me),
            head: ctx.hierarchy.head_of(me),
            parent: ctx.hierarchy.parent_of(me),
            neighbors,
        };
        let outs = p.send(&view);
        let mut seq = 0u32;
        for out in outs {
            if out.payload.is_empty() {
                continue;
            }
            let cost = out.payload.len() as u64;
            st.rep.tokens += cost;
            st.rep.packets += 1;
            st.rep.by_role[role_slot(role)] += cost;
            if shared.tracing {
                let bytes = cost * shared.token_bytes + shared.packet_header_bytes;
                let token = out.payload.first().expect("non-empty payload").0;
                match out.dest {
                    Destination::Broadcast => evts.push(BufEvt::Broadcast {
                        token,
                        cost,
                        role: obs_role(role),
                        bytes,
                    }),
                    Destination::Unicast(v) => evts.push(BufEvt::Push {
                        token,
                        cost,
                        role: obs_role(role),
                        to: v.0 as u64,
                        bytes,
                    }),
                }
            }
            if out.retransmit {
                st.rep.retransmits += 1;
                if shared.tracing {
                    let dst = match out.dest {
                        Destination::Broadcast => None,
                        Destination::Unicast(v) => Some(v.0 as u64),
                    };
                    evts.push(BufEvt::Retransmit { cost, dst });
                }
            }
            match out.dest {
                Destination::Broadcast => {
                    if shared.record_messages {
                        st.msgs.push(MessageRecord {
                            round: r,
                            from: me,
                            to: None,
                            delivered: true,
                            tokens: out.payload.to_vec(),
                        });
                    }
                    for &v in neighbors {
                        deliver(
                            shared,
                            r,
                            me,
                            v,
                            ctx,
                            st,
                            &mut evts,
                            &out.payload,
                            false,
                            seq,
                        );
                    }
                }
                Destination::Unicast(v) => {
                    let delivered = ctx.csr.has_edge(me, v);
                    if shared.record_messages {
                        st.msgs.push(MessageRecord {
                            round: r,
                            from: me,
                            to: Some(v),
                            delivered,
                            tokens: out.payload.to_vec(),
                        });
                    }
                    if delivered {
                        deliver(
                            shared,
                            r,
                            me,
                            v,
                            ctx,
                            st,
                            &mut evts,
                            &out.payload,
                            true,
                            seq,
                        );
                    } else {
                        st.rep.dropped_unicasts += 1;
                    }
                }
            }
            seq += 1;
        }
    }
    if shared.tracing && !evts.is_empty() {
        st.evts.push((r, evts));
    }
    // End-of-round markers: every node — down, finished or silent — tells
    // each round-r neighbour it is done sending, so receiver quorums close.
    // When the reliability layer is on, each marker piggybacks the sender's
    // cumulative ack for the envelopes that neighbour has sent it.
    for &v in neighbors {
        let ack = if shared.reliable {
            st.ledger.cum(v.index())
        } else {
            0
        };
        shared.transport.send(Envelope {
            round: r,
            from: me,
            to: v,
            seq: u32::MAX,
            kind: EnvelopeKind::RoundDone { ack },
        });
    }
}

/// Fault-plane delivery gate (the lock-step `faulted_delivery`, buffered):
/// `true` when the `from → to` delivery is lost this round. Deliveries to
/// crashed receivers are lost silently — the crash event already explains
/// them.
fn gated(
    shared: &Shared<'_>,
    r: usize,
    from: NodeId,
    to: NodeId,
    ctx: &RoundCtx,
    st: &mut NodeState,
    evts: &mut Vec<BufEvt>,
) -> bool {
    if ctx.down[to.index()] {
        return true;
    }
    let kind = if shared.faults.partitioned(r, from.index(), to.index()) {
        FaultKind::Partition
    } else if shared.faults.drops_message(r, from.index(), to.index()) {
        FaultKind::Loss
    } else {
        return false;
    };
    if kind == FaultKind::Partition {
        st.rep.partition = true;
    }
    st.rep.faults += 1;
    if shared.tracing {
        evts.push(BufEvt::Fault {
            to: to.0 as u64,
            kind,
        });
    }
    true
}

/// One fresh protocol-send delivery `from → to`: register it with the
/// reliability window (before the loss gate, so lost envelopes still
/// retransmit), roll the fault plane's loss / delay / duplication
/// decisions, and either hold the envelope for its release round or
/// enqueue it (twice, when duplicated — the receiver buffer's `(from,
/// seq)` dedup discards and counts the copy).
#[allow(clippy::too_many_arguments)]
fn deliver(
    shared: &Shared<'_>,
    r: usize,
    me: NodeId,
    v: NodeId,
    ctx: &RoundCtx,
    st: &mut NodeState,
    evts: &mut Vec<BufEvt>,
    payload: &Payload,
    directed: bool,
    seq: u32,
) {
    let rid = match st.window.as_mut() {
        Some(w) => w.register(v.index(), (payload.clone(), directed), r),
        None => 0,
    };
    if !shared.trivial && gated(shared, r, me, v, ctx, st, evts) {
        return;
    }
    if !shared.trivial {
        let d = shared.faults.delay_of(r, me.index(), v.index(), seq);
        if d > 0 {
            st.rep.delays += 1;
            if shared.tracing {
                evts.push(BufEvt::Delayed {
                    to: v.0 as u64,
                    rounds: d as u64,
                });
            }
            st.held.push(HeldEnvelope {
                release: r + d,
                to: v,
                rid,
                payload: payload.clone(),
                directed,
            });
            return;
        }
    }
    let envelope = || Envelope {
        round: r,
        from: me,
        to: v,
        seq,
        kind: EnvelopeKind::Payload {
            payload: payload.clone(),
            directed,
            rid,
        },
    };
    shared.transport.send(envelope());
    if !shared.trivial && shared.faults.duplicates(r, me.index(), v.index(), seq) {
        st.rep.dups_injected += 1;
        if shared.tracing {
            evts.push(BufEvt::Duplicated { to: v.0 as u64 });
        }
        shared.transport.send(envelope());
    }
}

/// A node's round-`r` receive step: release the reassembled inbox, run the
/// protocol's receive (unless the node is down — its inbox is lost), track
/// informed/finished transitions and the per-token latency cover, and
/// submit the round report to the oracle.
fn step_recv<P: Protocol>(
    shared: &Shared<'_>,
    i: usize,
    r: usize,
    ctx: &RoundCtx,
    p: &mut P,
    st: &mut NodeState,
) {
    let me = NodeId::from_index(i);
    let taken = st.buffer.take_round(r);
    st.rep.dups_discarded += taken.dups_discarded;
    let mut inbox = taken.inbox;
    if !ctx.down[i] {
        if shared.reliable {
            // Acks ride on the neighbours' round markers: release every
            // envelope this node sent them that they now acknowledge.
            if let Some(w) = st.window.as_mut() {
                for &(from, ack) in &taken.acks {
                    w.ack(from.index(), ack);
                }
            }
            // Rid-level dedup: the buffer's `(from, seq)` dedup cannot see
            // a timer retransmit of an envelope that also arrived late —
            // the receiver ledger can.
            let rids = taken.rids;
            let mut keep = Vec::with_capacity(inbox.len());
            for (msg, rid) in inbox.into_iter().zip(rids) {
                if st.ledger.accept(msg.from.index(), rid) {
                    keep.push(msg);
                } else {
                    st.rep.dups_discarded += 1;
                }
            }
            inbox = keep;
        }
        if !shared.trivial && shared.faults.reorder {
            shared.faults.shuffle(r, i, &mut inbox);
        }
        let view = LocalView {
            me,
            round: r,
            role: ctx.hierarchy.role(me),
            cluster: ctx.hierarchy.cluster_of(me),
            head: ctx.hierarchy.head_of(me),
            parent: ctx.hierarchy.parent_of(me),
            neighbors: ctx.csr.neighbors(me),
        };
        p.receive(&view, &inbox);
        if !st.informed && !inbox.is_empty() && shared.universe.is_subset(p.known()) {
            st.informed = true;
            st.rep.informed_end += 1;
        }
        // Latency cover: word-diff the protocol's known set against the
        // node's ever-learned set; each genuinely new token contributes
        // one node to its cover, stamping its completion instant when the
        // cover reaches n.
        let known_words = p.known().words();
        for (w, &kw) in known_words.iter().enumerate() {
            let mut fresh = kw & !st.learned.words().get(w).copied().unwrap_or(0);
            while fresh != 0 {
                let b = fresh.trailing_zeros();
                fresh &= fresh - 1;
                let t = TokenId((w * 64) as u64 + u64::from(b));
                st.learned.insert(t);
                let c = shared.cover[t.0 as usize].fetch_add(1, Ordering::SeqCst) + 1;
                if c == shared.n {
                    shared.covered_at[t.0 as usize]
                        .store(shared.start.elapsed().as_nanos() as u64, Ordering::Relaxed);
                }
            }
        }
    }
    let fin = p.finished();
    st.rep.finished += i64::from(fin) - i64::from(st.finished);
    st.finished = fin;
    let inflight_now =
        st.held.len() as i64 + st.window.as_ref().map_or(0, |w| w.in_flight() as i64);
    st.rep.inflight = inflight_now - st.last_inflight;
    st.last_inflight = inflight_now;

    let rep = std::mem::take(&mut st.rep);
    let stop = {
        let mut oracle = shared.oracle.lock().expect("oracle lock");
        oracle.report(r, rep)
    };
    if let Some(stop_round) = stop {
        shared.stop_after.fetch_min(stop_round, Ordering::SeqCst);
        shared.ring_all();
    }
    if shared.watchdog.is_some() {
        shared.progress.fetch_add(1, Ordering::Relaxed);
    }
}

/// Emit one buffered event through the tracer.
fn replay(tracer: &mut Tracer, r: u64, node: u64, e: &BufEvt) {
    match *e {
        BufEvt::Broadcast {
            token,
            cost,
            role,
            bytes,
        } => tracer.head_broadcast(r, node, token, cost, role, bytes),
        BufEvt::Push {
            token,
            cost,
            role,
            to,
            bytes,
        } => tracer.token_push(r, node, token, cost, role, to, bytes),
        BufEvt::Retransmit { cost, dst } => tracer.retransmit(r, node, cost, dst),
        BufEvt::Fault { to, kind } => tracer.fault_injected(r, node, Some(to), kind),
        BufEvt::Delayed { to, rounds } => tracer.delayed(r, node, to, rounds),
        BufEvt::Duplicated { to } => tracer.duplicated(r, node, to),
        BufEvt::RetransmitTimeout { to, attempt } => {
            tracer.retransmit_timeout(r, node, to, attempt)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, ExecMode, RunConfig};
    use crate::protocol::{Incoming, Outgoing};
    use crate::token::round_robin_assignment;
    use hinet_cluster::ctvg::{CtvgTrace, CtvgTraceProvider};
    use hinet_cluster::hierarchy::single_cluster;
    use hinet_graph::trace::TvgTrace;
    use hinet_rt::obs::ObsConfig;

    /// The plain flooding protocol from the engine tests: broadcast
    /// everything known, union everything heard.
    struct Flood {
        ta: TokenSet,
    }

    impl Flood {
        fn new() -> Self {
            Flood {
                ta: TokenSet::new(),
            }
        }
    }

    impl Protocol for Flood {
        fn on_start(&mut self, _me: NodeId, initial: &[TokenId]) {
            self.ta.extend(initial.iter().copied());
        }
        fn send(&mut self, _view: &LocalView<'_>) -> Vec<Outgoing> {
            if self.ta.is_empty() {
                vec![]
            } else {
                vec![Outgoing::broadcast_set(&self.ta)]
            }
        }
        fn receive(&mut self, _view: &LocalView<'_>, inbox: &[Incoming]) {
            for m in inbox {
                m.payload.union_into(&mut self.ta);
            }
        }
        fn known(&self) -> &TokenSet {
            &self.ta
        }
        fn on_restart(&mut self, me: NodeId, retained: &[TokenId]) {
            self.ta.clear();
            self.on_start(me, retained);
        }
    }

    fn star_provider(n: usize, rounds: usize) -> CtvgTraceProvider {
        let g = Arc::new(Graph::star(n));
        let h = Arc::new(single_cluster(n, NodeId(0)));
        let t = TvgTrace::new((0..rounds).map(|_| Arc::clone(&g)).collect());
        CtvgTraceProvider::new(CtvgTrace::new(
            t,
            (0..rounds).map(|_| Arc::clone(&h)).collect(),
        ))
    }

    /// Run the same scenario in both modes and assert the dissemination
    /// result (completion round, token sets) and the paper metrics match.
    fn assert_equivalent(n: usize, faults: FaultPlan, threads: usize) {
        let assignment = round_robin_assignment(n, n);
        let mut lp: Vec<Flood> = (0..n).map(|_| Flood::new()).collect();
        let mut provider = star_provider(n, 64);
        let lock = Engine::new(RunConfig::new().max_rounds(32).faults(faults.clone())).run(
            &mut provider,
            &mut lp,
            &assignment,
        );

        let mut ep: Vec<Flood> = (0..n).map(|_| Flood::new()).collect();
        let mut provider = star_provider(n, 64);
        let event = Engine::new(
            RunConfig::new()
                .max_rounds(32)
                .faults(faults)
                .threads(threads)
                .mode(ExecMode::Event),
        )
        .run(&mut provider, &mut ep, &assignment);

        assert_eq!(event.completion_round, lock.completion_round);
        assert_eq!(event.rounds_executed, lock.rounds_executed);
        assert_eq!(event.outcome, lock.outcome);
        assert_eq!(event.metrics.tokens_sent, lock.metrics.tokens_sent);
        assert_eq!(event.metrics.packets_sent, lock.metrics.packets_sent);
        assert_eq!(event.metrics.tokens_by_role, lock.metrics.tokens_by_role);
        assert_eq!(event.metrics.faults_injected, lock.metrics.faults_injected);
        assert_eq!(event.metrics.crashes, lock.metrics.crashes);
        assert_eq!(event.metrics.recoveries, lock.metrics.recoveries);
        for (i, (l, e)) in lp.iter().zip(ep.iter()).enumerate() {
            let lv: Vec<_> = l.known().iter().collect();
            let ev: Vec<_> = e.known().iter().collect();
            assert_eq!(ev, lv, "node {i} final token set diverged");
        }
    }

    #[test]
    fn event_matches_lockstep_on_star() {
        for threads in [1, 2, 4] {
            assert_equivalent(5, FaultPlan::none(), threads);
        }
    }

    #[test]
    fn event_matches_lockstep_under_loss() {
        for threads in [1, 3] {
            assert_equivalent(6, FaultPlan::new(7).with_loss_ppm(200_000), threads);
        }
    }

    #[test]
    fn event_matches_lockstep_under_crash_mid_run() {
        let plan = FaultPlan::new(11).with_crash_at(1, 2).with_down_rounds(2);
        for threads in [1, 4] {
            assert_equivalent(6, plan.clone(), threads);
        }
    }

    #[test]
    fn event_trace_matches_lockstep_after_header() {
        let n = 5;
        let assignment = round_robin_assignment(n, n);
        let trace = |mode: ExecMode| {
            let mut tracer = Tracer::new(ObsConfig::full());
            let mut protocols: Vec<Flood> = (0..n).map(|_| Flood::new()).collect();
            let mut provider = star_provider(n, 32);
            let report = Engine::new(
                RunConfig::new()
                    .max_rounds(16)
                    .mode(mode)
                    .threads(2)
                    .tracer(&mut tracer),
            )
            .run(&mut provider, &mut protocols, &assignment);
            assert!(report.completed());
            tracer.to_jsonl()
        };
        let lock = trace(ExecMode::Lockstep);
        let event = trace(ExecMode::Event);
        // Headers differ (mode meta stamp, runtime counters); every event
        // line after them must be byte-identical.
        let lock_events: Vec<&str> = lock.lines().skip(1).collect();
        let event_events: Vec<&str> = event.lines().skip(1).collect();
        assert_eq!(event_events, lock_events);
        let event_header = event.lines().next().unwrap();
        let lock_header = lock.lines().next().unwrap();
        assert!(event_header.contains("event"), "mode meta stamp missing");
        assert!(
            !lock_header.contains("event"),
            "lock-step header must not change"
        );
    }

    #[test]
    fn event_reports_wall_clock_metrics() {
        let n = 5;
        let assignment = round_robin_assignment(n, n);
        let mut protocols: Vec<Flood> = (0..n).map(|_| Flood::new()).collect();
        let mut provider = star_provider(n, 32);
        let report = Engine::new(RunConfig::new().max_rounds(16).mode(ExecMode::Event)).run(
            &mut provider,
            &mut protocols,
            &assignment,
        );
        assert!(report.completed());
        let lat = report.wall.latency.expect("event mode tracks latency");
        assert_eq!(lat.covered, lat.total, "completed run covers every token");
        assert_eq!(lat.total, n);
        assert!(lat.p50_ns <= lat.p95_ns && lat.p95_ns <= lat.max_ns);
        assert!(report.wall.elapsed_ns > 0);
        assert!(report.wall.tokens_per_sec > 0.0);
    }

    /// Flood whose send step naps first: a stand-in for a wedged or
    /// pathologically slow protocol, giving the armed watchdog a genuine
    /// no-progress window to catch (the fault plane alone cannot wedge the
    /// driver — end-of-round markers always flow).
    struct NappingFlood {
        inner: Flood,
        nap: Duration,
    }

    impl NappingFlood {
        fn new(nap: Duration) -> Self {
            NappingFlood {
                inner: Flood::new(),
                nap,
            }
        }
    }

    impl Protocol for NappingFlood {
        fn on_start(&mut self, me: NodeId, initial: &[TokenId]) {
            self.inner.on_start(me, initial);
        }
        fn send(&mut self, view: &LocalView<'_>) -> Vec<Outgoing> {
            if !self.nap.is_zero() {
                std::thread::sleep(self.nap);
            }
            self.inner.send(view)
        }
        fn receive(&mut self, view: &LocalView<'_>, inbox: &[Incoming]) {
            self.inner.receive(view, inbox);
        }
        fn known(&self) -> &TokenSet {
            self.inner.known()
        }
        fn on_restart(&mut self, me: NodeId, retained: &[TokenId]) {
            self.inner.on_restart(me, retained);
        }
    }

    #[test]
    fn watchdog_probe_rearms_on_progress_and_fires_after_a_quiet_window() {
        let t0 = Instant::now();
        let window = Duration::from_millis(10);
        let mut wd = Watchdog::new(t0, window);
        // A new epoch re-arms the deadline, however late the probe lands.
        assert!(!wd.probe(1, t0 + window * 3, window));
        // Same epoch inside the re-armed window: quiet, but not a stall yet.
        assert!(!wd.probe(1, t0 + window * 3 + Duration::from_millis(1), window));
        // Same epoch a full window after the last progress: fire.
        assert!(wd.probe(1, t0 + window * 4, window));
        // A run that never makes any progress fires off the initial arming.
        let mut cold = Watchdog::new(t0, window);
        assert!(cold.probe(0, t0 + window, window));
    }

    #[test]
    fn watchdog_halts_a_wedged_run_with_structured_diagnostics() {
        let n = 2;
        let assignment = round_robin_assignment(n, n);
        // Node 1 naps for many watchdog windows inside every send step, so
        // node 0 parks on a quorum that makes no progress for far longer
        // than the armed window.
        let mut protocols = vec![
            NappingFlood::new(Duration::ZERO),
            NappingFlood::new(Duration::from_millis(250)),
        ];
        let mut provider = star_provider(n, 64);
        let report = Engine::new(
            RunConfig::new()
                .max_rounds(32)
                .threads(2)
                .mode(ExecMode::Event)
                .stall_rounds(1),
        )
        .run(&mut provider, &mut protocols, &assignment);

        assert!(report.completion_round.is_none());
        assert!(
            matches!(
                report.outcome,
                Outcome::Stalled {
                    budget_exhausted: false,
                    ..
                }
            ),
            "watchdog halt must report a non-budget stall, got {:?}",
            report.outcome
        );
        let diag = report.stall.expect("watchdog halt carries diagnostics");
        assert!(!diag.nodes.is_empty());
        // Snapshots are sorted by node id and stay inside the run's bounds.
        for pair in diag.nodes.windows(2) {
            assert!(pair[0].node.index() < pair[1].node.index());
        }
        for ns in &diag.nodes {
            assert!(ns.node.index() < n);
            assert!(ns.frontier < 32);
            assert!(ns.missing.iter().all(|m| m.index() < n));
        }
        // At least one stalled node names the neighbour whose round marker
        // never arrived — that is the diagnostic the watchdog exists for.
        assert!(
            diag.nodes.iter().any(|ns| !ns.missing.is_empty()),
            "some node must be short of quorum: {:?}",
            diag.nodes
        );
        assert_eq!(diag.fault_window, None, "no faults were injected");
    }

    #[test]
    fn armed_watchdog_stays_quiet_through_chaotic_reliable_run() {
        let n = 6;
        let assignment = round_robin_assignment(n, n);
        let mut protocols: Vec<Flood> = (0..n).map(|_| Flood::new()).collect();
        let mut provider = star_provider(n, 96);
        let faults = FaultPlan::new(23)
            .with_loss_ppm(150_000)
            .with_delay_ppm(100_000)
            .with_max_delay(2)
            .with_dup_ppm(100_000)
            .with_reorder(true);
        let report = Engine::new(
            RunConfig::new()
                .max_rounds(64)
                .threads(3)
                .mode(ExecMode::Event)
                .faults(faults)
                .reliable(true)
                .stall_rounds(32),
        )
        .run(&mut provider, &mut protocols, &assignment);
        assert!(
            report.completed(),
            "reliability layer must finish the chaotic run: {:?}",
            report.outcome
        );
        assert!(
            report.stall.is_none(),
            "a progressing run must never trip the watchdog"
        );
        let m = &report.metrics;
        assert!(m.delays_injected > 0, "delay plan must have fired");
        assert!(m.duplicates_injected > 0, "dup plan must have fired");
        // The discard gauge counts every duplicate the receivers reject —
        // plan-injected copies and redundant timer retransmits alike — so
        // under chaos it must have fired, and nothing was double-counted.
        assert!(m.dups_discarded > 0, "receivers must have discarded dups");
    }

    #[test]
    fn lockstep_wall_clock_is_throughput_only() {
        let n = 4;
        let assignment = round_robin_assignment(n, n);
        let mut protocols: Vec<Flood> = (0..n).map(|_| Flood::new()).collect();
        let mut provider = star_provider(n, 16);
        let report = Engine::with_defaults().run(&mut provider, &mut protocols, &assignment);
        assert!(report.completed());
        assert!(report.wall.elapsed_ns > 0);
        assert!(report.wall.latency.is_none());
        assert_eq!(report.wall.reassembly_stalls, 0);
        assert_eq!(report.wall.mailbox_depth_max, 0);
    }
}
