//! Tokens of the k-token dissemination problem.
//!
//! The paper: "each token is stamped with a unique id, and the id is
//! comparable with others" — both algorithms pick max/min over ids, so the
//! total order is load-bearing, and a sorted-set representation makes the
//! min/max selections O(log) and the subset checks cheap.

use std::collections::BTreeSet;
use std::fmt;

/// Unique, totally ordered token identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TokenId(pub u64);

impl fmt::Debug for TokenId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for TokenId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// An ordered set of tokens — the `TA`/`TS`/`TR` sets of the algorithms.
pub type TokenSet = BTreeSet<TokenId>;

/// The token with the largest id in `a \ b`, or `None` if `a ⊆ b`.
///
/// This is the member-side selection of Algorithm 1: "choose t, the token
/// with the maximum id among these unknown by cluster head".
pub fn max_not_in(a: &TokenSet, b: &TokenSet) -> Option<TokenId> {
    a.iter().rev().copied().find(|t| !b.contains(t))
}

/// The token with the smallest id in `a \ b`, or `None` if `a ⊆ b`.
///
/// This is the head/gateway-side selection of Algorithm 1 (and the KLO
/// baseline): "choose token t with the minimum id that has not \[been\] sent
/// in \[the\] current phase".
pub fn min_not_in(a: &TokenSet, b: &TokenSet) -> Option<TokenId> {
    a.iter().copied().find(|t| !b.contains(t))
}

/// The token with the largest id in `a \ (b ∪ c)` — the member selection of
/// Algorithm 1 uses `TA \ (TS ∪ TR)` without materialising the union.
pub fn max_not_in_either(a: &TokenSet, b: &TokenSet, c: &TokenSet) -> Option<TokenId> {
    a.iter()
        .rev()
        .copied()
        .find(|t| !b.contains(t) && !c.contains(t))
}

/// Build a token universe `{0, …, k−1}`.
pub fn universe(k: usize) -> TokenSet {
    (0..k as u64).map(TokenId).collect()
}

/// Distribute `k` tokens over `n` nodes round-robin: token `i` starts at
/// node `i mod n`. Returns the per-node initial token lists.
pub fn round_robin_assignment(n: usize, k: usize) -> Vec<Vec<TokenId>> {
    let mut per_node = vec![Vec::new(); n];
    for i in 0..k {
        per_node[i % n].push(TokenId(i as u64));
    }
    per_node
}

/// Concentrate all `k` tokens at one node (single-source dissemination,
/// the 1-token generalisation).
pub fn single_source_assignment(n: usize, k: usize, source: usize) -> Vec<Vec<TokenId>> {
    assert!(source < n);
    let mut per_node = vec![Vec::new(); n];
    per_node[source] = (0..k as u64).map(TokenId).collect();
    per_node
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u64]) -> TokenSet {
        ids.iter().copied().map(TokenId).collect()
    }

    #[test]
    fn max_min_not_in() {
        let a = set(&[1, 3, 5, 7]);
        let b = set(&[5, 7]);
        assert_eq!(max_not_in(&a, &b), Some(TokenId(3)));
        assert_eq!(min_not_in(&a, &b), Some(TokenId(1)));
        assert_eq!(max_not_in(&a, &a), None);
        assert_eq!(min_not_in(&a, &a), None);
        assert_eq!(max_not_in(&a, &TokenSet::new()), Some(TokenId(7)));
    }

    #[test]
    fn max_not_in_either_skips_both() {
        let a = set(&[1, 2, 3, 4]);
        let b = set(&[4]);
        let c = set(&[3]);
        assert_eq!(max_not_in_either(&a, &b, &c), Some(TokenId(2)));
        assert_eq!(max_not_in_either(&a, &a, &c), None);
    }

    #[test]
    fn universe_is_dense() {
        let u = universe(4);
        assert_eq!(u.len(), 4);
        assert!(u.contains(&TokenId(0)));
        assert!(u.contains(&TokenId(3)));
    }

    #[test]
    fn round_robin_covers_all_tokens() {
        let a = round_robin_assignment(3, 8);
        assert_eq!(a[0], vec![TokenId(0), TokenId(3), TokenId(6)]);
        assert_eq!(a[1], vec![TokenId(1), TokenId(4), TokenId(7)]);
        assert_eq!(a[2], vec![TokenId(2), TokenId(5)]);
        let total: usize = a.iter().map(Vec::len).sum();
        assert_eq!(total, 8);
    }

    #[test]
    fn single_source_concentrates() {
        let a = single_source_assignment(4, 5, 2);
        assert_eq!(a[2].len(), 5);
        assert!(a[0].is_empty() && a[1].is_empty() && a[3].is_empty());
    }
}
