//! Tokens of the k-token dissemination problem.
//!
//! The paper: "each token is stamped with a unique id, and the id is
//! comparable with others" — both algorithms pick max/min over ids, so the
//! total order is load-bearing. Token ids are dense (`0..k` by
//! construction of [`universe`] and the assignment helpers), which makes a
//! **word-packed bitset** the natural set representation: membership is a
//! bit test, unions are word-wide `OR`s, and the min/max selections the
//! algorithms run every round compile down to
//! `trailing_zeros`/`leading_zeros` over a handful of `u64` words instead
//! of ordered-tree walks. At the million-node scale this is the difference
//! between seconds and hours: a `k = 10^4` set is 157 words (1250 bytes),
//! scanned at memory bandwidth.

use std::fmt;

/// Unique, totally ordered token identifier.
///
/// Ids are assumed *dense*: sets store a bit per id up to the largest
/// inserted one, so memory is proportional to `max_id`, not to the number
/// of elements. Every assignment helper in this module hands out ids from
/// `0..k`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TokenId(pub u64);

impl fmt::Debug for TokenId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for TokenId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// An ordered set of tokens — the `TA`/`TS`/`TR` sets of the algorithms —
/// packed as a fixed-width bitset (`Vec<u64>`, one bit per id).
///
/// The surface mirrors the ordered-set operations the algorithms need:
/// ascending iteration, subset tests, and the word-parallel selections
/// [`max_not_in`]/[`min_not_in`]/[`max_not_in_either`]. Word storage grows
/// on demand; two sets with the same elements compare equal regardless of
/// their capacities.
#[derive(Clone, Default)]
pub struct TokenSet {
    words: Vec<u64>,
    len: usize,
}

impl TokenSet {
    /// The empty set.
    pub fn new() -> Self {
        TokenSet::default()
    }

    /// The empty set with room for ids `0..k` pre-allocated, so hot loops
    /// never reallocate mid-run.
    pub fn with_capacity(k: usize) -> Self {
        TokenSet {
            words: vec![0; k.div_ceil(64)],
            len: 0,
        }
    }

    /// Number of tokens in the set. O(1): maintained incrementally.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Remove every token, keeping the allocated capacity.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.len = 0;
    }

    /// Word `i` of the bitset, zero beyond the allocated prefix.
    #[inline]
    fn word(&self, i: usize) -> u64 {
        self.words.get(i).copied().unwrap_or(0)
    }

    /// The raw bitset words, for word-parallel diffing against another
    /// set without allocating.
    #[inline]
    pub(crate) fn words(&self) -> &[u64] {
        &self.words
    }

    /// Insert `t`; returns `true` iff it was not already present.
    pub fn insert(&mut self, t: TokenId) -> bool {
        let (w, b) = (t.0 as usize / 64, t.0 % 64);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let mask = 1u64 << b;
        let fresh = self.words[w] & mask == 0;
        self.words[w] |= mask;
        self.len += usize::from(fresh);
        fresh
    }

    /// Whether `t` is in the set.
    #[inline]
    pub fn contains(&self, t: &TokenId) -> bool {
        self.word(t.0 as usize / 64) & (1u64 << (t.0 % 64)) != 0
    }

    /// In-place union: `self ∪= other`, one `OR` per word. This is the
    /// whole-set receive path of Algorithm 2 and the flooding baselines.
    pub fn union_with(&mut self, other: &TokenSet) {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        let mut added = 0usize;
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            added += (b & !*a).count_ones() as usize;
            *a |= b;
        }
        self.len += added;
    }

    /// Whether `self ⊆ other`, word-parallel.
    pub fn is_subset(&self, other: &TokenSet) -> bool {
        self.words
            .iter()
            .enumerate()
            .all(|(i, &w)| w & !other.word(i) == 0)
    }

    /// Ascending iterator over the member ids.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            words: &self.words,
            word: 0,
            bits: self.words.first().copied().unwrap_or(0),
        }
    }

    /// The smallest member, or `None` if empty.
    pub fn min(&self) -> Option<TokenId> {
        self.words.iter().enumerate().find_map(|(i, &w)| {
            (w != 0).then(|| TokenId((i * 64) as u64 + u64::from(w.trailing_zeros())))
        })
    }

    /// The largest member, or `None` if empty.
    pub fn max(&self) -> Option<TokenId> {
        self.words.iter().enumerate().rev().find_map(|(i, &w)| {
            (w != 0).then(|| TokenId((i * 64 + 63) as u64 - u64::from(w.leading_zeros())))
        })
    }
}

impl PartialEq for TokenSet {
    fn eq(&self, other: &Self) -> bool {
        // Capacities may differ (e.g. after `clear`): compare the common
        // prefix and require the longer tail to be all-zero.
        let common = self.words.len().min(other.words.len());
        self.words[..common] == other.words[..common]
            && self.words[common..].iter().all(|&w| w == 0)
            && other.words[common..].iter().all(|&w| w == 0)
    }
}

impl Eq for TokenSet {}

impl fmt::Debug for TokenSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl Extend<TokenId> for TokenSet {
    fn extend<I: IntoIterator<Item = TokenId>>(&mut self, iter: I) {
        for t in iter {
            self.insert(t);
        }
    }
}

impl FromIterator<TokenId> for TokenSet {
    fn from_iter<I: IntoIterator<Item = TokenId>>(iter: I) -> Self {
        let mut s = TokenSet::new();
        s.extend(iter);
        s
    }
}

impl<'a> IntoIterator for &'a TokenSet {
    type Item = TokenId;
    type IntoIter = Iter<'a>;
    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

/// Ascending iterator over a [`TokenSet`] (see [`TokenSet::iter`]).
#[derive(Clone)]
pub struct Iter<'a> {
    words: &'a [u64],
    word: usize,
    bits: u64,
}

impl Iterator for Iter<'_> {
    type Item = TokenId;

    fn next(&mut self) -> Option<TokenId> {
        while self.bits == 0 {
            self.word += 1;
            if self.word >= self.words.len() {
                return None;
            }
            self.bits = self.words[self.word];
        }
        let b = self.bits.trailing_zeros();
        self.bits &= self.bits - 1; // clear the lowest set bit
        Some(TokenId((self.word * 64) as u64 + u64::from(b)))
    }
}

/// The token with the largest id in `a \ b`, or `None` if `a ⊆ b`.
///
/// This is the member-side selection of Algorithm 1: "choose t, the token
/// with the maximum id among these unknown by cluster head". One
/// `AND-NOT` + `leading_zeros` per word, scanned from the top.
pub fn max_not_in(a: &TokenSet, b: &TokenSet) -> Option<TokenId> {
    for i in (0..a.words.len()).rev() {
        let w = a.words[i] & !b.word(i);
        if w != 0 {
            return Some(TokenId((i * 64 + 63) as u64 - u64::from(w.leading_zeros())));
        }
    }
    None
}

/// The token with the smallest id in `a \ b`, or `None` if `a ⊆ b`.
///
/// This is the head/gateway-side selection of Algorithm 1 (and the KLO
/// baseline): "choose token t with the minimum id that has not \[been\] sent
/// in \[the\] current phase".
pub fn min_not_in(a: &TokenSet, b: &TokenSet) -> Option<TokenId> {
    for i in 0..a.words.len() {
        let w = a.words[i] & !b.word(i);
        if w != 0 {
            return Some(TokenId((i * 64) as u64 + u64::from(w.trailing_zeros())));
        }
    }
    None
}

/// The token with the largest id in `a \ (b ∪ c)` — the member selection of
/// Algorithm 1 uses `TA \ (TS ∪ TR)` without materialising the union.
pub fn max_not_in_either(a: &TokenSet, b: &TokenSet, c: &TokenSet) -> Option<TokenId> {
    for i in (0..a.words.len()).rev() {
        let w = a.words[i] & !(b.word(i) | c.word(i));
        if w != 0 {
            return Some(TokenId((i * 64 + 63) as u64 - u64::from(w.leading_zeros())));
        }
    }
    None
}

/// Build a token universe `{0, …, k−1}` — all-ones words with a masked
/// tail, O(k/64).
pub fn universe(k: usize) -> TokenSet {
    let mut words = vec![u64::MAX; k / 64];
    if k % 64 != 0 {
        words.push((1u64 << (k % 64)) - 1);
    }
    TokenSet { words, len: k }
}

/// Distribute `k` tokens over `n` nodes round-robin: token `i` starts at
/// node `i mod n`. Returns the per-node initial token lists.
pub fn round_robin_assignment(n: usize, k: usize) -> Vec<Vec<TokenId>> {
    let mut per_node = vec![Vec::new(); n];
    for i in 0..k {
        per_node[i % n].push(TokenId(i as u64));
    }
    per_node
}

/// Concentrate all `k` tokens at one node (single-source dissemination,
/// the 1-token generalisation).
pub fn single_source_assignment(n: usize, k: usize, source: usize) -> Vec<Vec<TokenId>> {
    assert!(source < n);
    let mut per_node = vec![Vec::new(); n];
    per_node[source] = (0..k as u64).map(TokenId).collect();
    per_node
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u64]) -> TokenSet {
        ids.iter().copied().map(TokenId).collect()
    }

    #[test]
    fn max_min_not_in() {
        let a = set(&[1, 3, 5, 7]);
        let b = set(&[5, 7]);
        assert_eq!(max_not_in(&a, &b), Some(TokenId(3)));
        assert_eq!(min_not_in(&a, &b), Some(TokenId(1)));
        assert_eq!(max_not_in(&a, &a), None);
        assert_eq!(min_not_in(&a, &a), None);
        assert_eq!(max_not_in(&a, &TokenSet::new()), Some(TokenId(7)));
    }

    #[test]
    fn max_not_in_either_skips_both() {
        let a = set(&[1, 2, 3, 4]);
        let b = set(&[4]);
        let c = set(&[3]);
        assert_eq!(max_not_in_either(&a, &b, &c), Some(TokenId(2)));
        assert_eq!(max_not_in_either(&a, &a, &c), None);
    }

    #[test]
    fn selections_cross_word_boundaries() {
        let a = set(&[2, 63, 64, 127, 128, 200]);
        let b = set(&[200, 128]);
        assert_eq!(max_not_in(&a, &b), Some(TokenId(127)));
        assert_eq!(min_not_in(&a, &set(&[2])), Some(TokenId(63)));
        assert_eq!(
            max_not_in_either(&a, &set(&[200]), &set(&[128, 127])),
            Some(TokenId(64))
        );
    }

    #[test]
    fn universe_is_dense() {
        let u = universe(4);
        assert_eq!(u.len(), 4);
        assert!(u.contains(&TokenId(0)));
        assert!(u.contains(&TokenId(3)));
        assert!(!u.contains(&TokenId(4)));
        let big = universe(130);
        assert_eq!(big.len(), 130);
        assert!(big.contains(&TokenId(129)));
        assert!(!big.contains(&TokenId(130)));
        assert_eq!(big.iter().count(), 130);
    }

    #[test]
    fn insert_contains_len() {
        let mut s = TokenSet::new();
        assert!(s.insert(TokenId(70)));
        assert!(!s.insert(TokenId(70)), "double insert reports not-fresh");
        assert!(s.insert(TokenId(3)));
        assert_eq!(s.len(), 2);
        assert!(s.contains(&TokenId(70)));
        assert!(!s.contains(&TokenId(71)));
        assert!(!s.contains(&TokenId(7000)), "probe past capacity is false");
        s.clear();
        assert!(s.is_empty());
        assert!(!s.contains(&TokenId(70)));
    }

    #[test]
    fn iter_is_ascending() {
        let s = set(&[190, 0, 64, 63, 5]);
        let got: Vec<u64> = s.iter().map(|t| t.0).collect();
        assert_eq!(got, vec![0, 5, 63, 64, 190]);
        assert_eq!(s.min(), Some(TokenId(0)));
        assert_eq!(s.max(), Some(TokenId(190)));
        assert_eq!(TokenSet::new().min(), None);
        assert_eq!(TokenSet::new().max(), None);
    }

    #[test]
    fn union_with_counts_fresh_bits() {
        let mut a = set(&[1, 64]);
        a.union_with(&set(&[64, 65, 200]));
        assert_eq!(a.len(), 4);
        assert_eq!(a, set(&[1, 64, 65, 200]));
    }

    #[test]
    fn subset_and_capacity_insensitive_equality() {
        let small = set(&[1, 2]);
        let mut big = TokenSet::with_capacity(1000);
        big.insert(TokenId(1));
        big.insert(TokenId(2));
        assert_eq!(small, big, "equality ignores capacity");
        assert!(small.is_subset(&big) && big.is_subset(&small));
        assert!(small.is_subset(&set(&[1, 2, 900])));
        assert!(!set(&[1, 900]).is_subset(&small), "long tail not subset");
        let mut cleared = set(&[500]);
        cleared.clear();
        assert_eq!(cleared, TokenSet::new());
    }

    #[test]
    fn round_robin_covers_all_tokens() {
        let a = round_robin_assignment(3, 8);
        assert_eq!(a[0], vec![TokenId(0), TokenId(3), TokenId(6)]);
        assert_eq!(a[1], vec![TokenId(1), TokenId(4), TokenId(7)]);
        assert_eq!(a[2], vec![TokenId(2), TokenId(5)]);
        let total: usize = a.iter().map(Vec::len).sum();
        assert_eq!(total, 8);
    }

    #[test]
    fn single_source_concentrates() {
        let a = single_source_assignment(4, 5, 2);
        assert_eq!(a[2].len(), 5);
        assert!(a[0].is_empty() && a[1].is_empty() && a[3].is_empty());
    }
}
