//! Protocol-agnostic ack/timeout/backoff reliability layer.
//!
//! The paper's round model assumes every surviving message is delivered in
//! the round it was sent. Once the fault plane can drop and delay
//! deliveries, recovery used to be the job of each algorithm's bespoke ARQ
//! (`retransmit` in Algorithms 1/2 only). This module generalises that
//! into one state machine every executor shares — the lock-step engine,
//! the event driver, and the RLNC executor all recover through it:
//!
//! * **Sender side** ([`SenderWindow`]): every payload handed to a link is
//!   registered under a per-link monotone *reliable id* (`rid`). A pending
//!   entry carries a retransmit timer; when the timer expires before the
//!   entry is acked, [`SenderWindow::due`] hands the payload back for
//!   re-sending and re-arms the timer with exponential backoff
//!   (`rto << attempt`, capped) plus deterministic jitter. The in-flight
//!   set per link is bounded by [`ReliableConfig::window`]; overflow drops
//!   the oldest (most-retried) entry and counts it.
//! * **Receiver side** ([`ReceiverLedger`]): accepts each `(sender, rid)`
//!   at most once (retransmit duplicates are discarded and counted by the
//!   caller) and maintains the *cumulative ack* — the smallest rid not yet
//!   received; everything below it has arrived. In the event driver the
//!   cumulative ack piggybacks on the link's next
//!   [`crate::transport::EnvelopeKind::RoundDone`] marker; the lock-step
//!   engine, which has no markers, applies it at the round barrier
//!   (same value, one round earlier — both schedules are deterministic).
//!
//! # Determinism
//!
//! Nothing here consults wall time or ambient randomness: timers are round
//! counters, backoff jitter is a pure [`hinet_rt::rng::mix`] hash of
//! `(seed, rid, attempt)`, and retransmitted envelopes re-roll the fault
//! plane's *per-round* decisions at the round they are re-sent. The same
//! seed therefore replays the same recovery schedule exactly.

use hinet_rt::rng::mix;
use std::collections::{BTreeMap, BTreeSet};

/// Domain-separation tag for the backoff-jitter hash stream.
const TAG_RELIABLE: u64 = 0x524c_4259; // "RLBY"

/// Tuning knobs of the reliability state machine (all in rounds).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReliableConfig {
    /// Base retransmission timeout: a fresh envelope unacked for this many
    /// rounds is retransmitted.
    pub rto: usize,
    /// Upper bound on the backed-off timeout.
    pub cap: usize,
    /// Maximum pending (unacked) envelopes per link before the oldest is
    /// dropped from tracking.
    pub window: usize,
}

impl Default for ReliableConfig {
    fn default() -> Self {
        // rto 2: a round-r payload's ack rides the receiver's round-(r+1)
        // marker, so a healthy link never fires the timer.
        ReliableConfig {
            rto: 2,
            cap: 16,
            window: 1024,
        }
    }
}

/// One unacked envelope awaiting its ack or retransmit timer.
#[derive(Clone, Debug)]
struct Pending<T> {
    rid: u64,
    item: T,
    attempt: u32,
    registered: usize,
    next_retry: usize,
}

/// Sender-side per-link state: the next rid and the pending queue.
#[derive(Debug)]
struct LinkSender<T> {
    next_rid: u64,
    pending: Vec<Pending<T>>,
}

// Manual impl: `#[derive(Default)]` would demand `T: Default`, which the
// payload types carried here do not (and need not) provide.
impl<T> Default for LinkSender<T> {
    fn default() -> LinkSender<T> {
        LinkSender {
            next_rid: 0,
            pending: Vec::new(),
        }
    }
}

/// A retransmission handed back by [`SenderWindow::due`].
#[derive(Clone, Debug)]
pub struct Retransmit<T> {
    /// Destination node index.
    pub to: usize,
    /// The original reliable id — reused verbatim so the receiver dedups.
    pub rid: u64,
    /// The payload to re-send.
    pub item: T,
    /// Retry attempt number (1 = first retransmission).
    pub attempt: u32,
}

/// One sender's reliability window over all of its links.
#[derive(Debug)]
pub struct SenderWindow<T> {
    seed: u64,
    cfg: ReliableConfig,
    links: BTreeMap<usize, LinkSender<T>>,
    /// Pending entries dropped because a link's window overflowed.
    pub overflow_dropped: u64,
}

impl<T: Clone> SenderWindow<T> {
    /// An empty window. `seed` feeds the jitter stream only — two windows
    /// with the same seed and call sequence behave identically.
    pub fn new(seed: u64, cfg: ReliableConfig) -> SenderWindow<T> {
        SenderWindow {
            seed,
            cfg,
            links: BTreeMap::new(),
            overflow_dropped: 0,
        }
    }

    /// Backed-off timeout (in rounds) for retry `attempt` of `rid`:
    /// `min(cap, rto * 2^(attempt-1))` plus a jitter of up to half the
    /// base, hashed from `(seed, rid, attempt)`.
    fn timeout(&self, rid: u64, attempt: u32) -> usize {
        let shift = (attempt - 1).min(16);
        let base = self.cfg.cap.min(self.cfg.rto.saturating_mul(1 << shift));
        let jitter =
            mix(self.seed, mix(TAG_RELIABLE, mix(rid, u64::from(attempt)))) % (base as u64 / 2 + 1);
        base + jitter as usize
    }

    /// Register a payload sent to `to` in `round`; returns the reliable id
    /// the envelope must carry. The entry stays pending until
    /// [`SenderWindow::ack`] covers it.
    pub fn register(&mut self, to: usize, item: T, round: usize) -> u64 {
        let rid = self.links.entry(to).or_default().next_rid;
        let next_retry = round + self.timeout(rid, 1);
        let link = self.links.get_mut(&to).expect("link just created");
        link.next_rid += 1;
        if link.pending.len() >= self.cfg.window {
            link.pending.remove(0);
            self.overflow_dropped += 1;
        }
        link.pending.push(Pending {
            rid,
            item,
            attempt: 1,
            registered: round,
            next_retry,
        });
        rid
    }

    /// Apply a cumulative ack from `to`: every rid `< cum` is delivered,
    /// so its pending entry is cleared.
    pub fn ack(&mut self, to: usize, cum: u64) {
        if let Some(link) = self.links.get_mut(&to) {
            link.pending.retain(|p| p.rid >= cum);
        }
    }

    /// Drain every pending entry whose timer expired by `round`: each is
    /// returned for re-sending and re-armed with the next backoff step.
    pub fn due(&mut self, round: usize) -> Vec<Retransmit<T>> {
        let mut out = Vec::new();
        for (&to, link) in &mut self.links {
            for p in &mut link.pending {
                if p.next_retry <= round {
                    p.attempt += 1;
                    out.push(Retransmit {
                        to,
                        rid: p.rid,
                        item: p.item.clone(),
                        attempt: p.attempt - 1,
                    });
                }
            }
        }
        // Re-arm outside the scan so the jitter hash sees the bumped
        // attempt exactly once per firing.
        for r in &out {
            let timeout = self.timeout(r.rid, r.attempt + 1);
            if let Some(link) = self.links.get_mut(&r.to) {
                if let Some(p) = link.pending.iter_mut().find(|p| p.rid == r.rid) {
                    p.next_retry = round + timeout;
                }
            }
        }
        out
    }

    /// Apply acks for every link in one sweep: `cum_of(to)` yields the
    /// receiver `to`'s cumulative ack for this sender's link. Used by the
    /// lock-step engine, whose round barrier makes every receiver's ledger
    /// consultable at once (the event runtime instead applies the acks
    /// piggybacked on round markers as they arrive).
    pub fn sync_acks(&mut self, mut cum_of: impl FnMut(usize) -> u64) {
        for (&to, link) in &mut self.links {
            let cum = cum_of(to);
            link.pending.retain(|p| p.rid >= cum);
        }
    }

    /// Total unacked envelopes across all links.
    pub fn in_flight(&self) -> usize {
        self.links.values().map(|l| l.pending.len()).sum()
    }

    /// Round in which the oldest still-unacked envelope was first sent —
    /// `None` when nothing is pending. Feeds the stall watchdog's
    /// "oldest unacked envelope age" diagnostic.
    pub fn oldest_unacked(&self) -> Option<usize> {
        self.links
            .values()
            .flat_map(|l| l.pending.iter().map(|p| p.registered))
            .min()
    }
}

/// Receiver-side per-link dedup and cumulative-ack state.
#[derive(Debug, Default)]
struct LinkReceiver {
    /// Every rid `< cum` has been accepted.
    cum: u64,
    /// Accepted rids at or above `cum` (out-of-order arrivals).
    ooo: BTreeSet<u64>,
}

impl LinkReceiver {
    /// Accept `rid` once: `false` means it was already accepted (a
    /// retransmit or transport duplicate — discard it).
    fn accept(&mut self, rid: u64) -> bool {
        if rid < self.cum || !self.ooo.insert(rid) {
            return false;
        }
        while self.ooo.remove(&self.cum) {
            self.cum += 1;
        }
        true
    }
}

/// One receiver's ledger over all of its inbound links.
#[derive(Debug, Default)]
pub struct ReceiverLedger {
    links: BTreeMap<usize, LinkReceiver>,
}

impl ReceiverLedger {
    /// An empty ledger.
    pub fn new() -> ReceiverLedger {
        ReceiverLedger::default()
    }

    /// Accept `(from, rid)` at most once; `false` flags a duplicate.
    pub fn accept(&mut self, from: usize, rid: u64) -> bool {
        self.links.entry(from).or_default().accept(rid)
    }

    /// Cumulative ack to piggyback towards `from`: every rid below the
    /// returned value has been accepted on that link.
    pub fn cum(&self, from: usize) -> u64 {
        self.links.get(&from).map_or(0, |l| l.cum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(rto: usize, cap: usize, window: usize) -> ReliableConfig {
        ReliableConfig { rto, cap, window }
    }

    #[test]
    fn register_ack_clears_pending() {
        let mut w: SenderWindow<u32> = SenderWindow::new(1, ReliableConfig::default());
        let r0 = w.register(5, 100, 0);
        let r1 = w.register(5, 101, 0);
        assert_eq!((r0, r1), (0, 1), "rids are per-link monotone from 0");
        assert_eq!(w.in_flight(), 2);
        w.ack(5, 1);
        assert_eq!(w.in_flight(), 1, "rid 0 cleared by cum 1");
        w.ack(5, 2);
        assert_eq!(w.in_flight(), 0);
        assert_eq!(w.oldest_unacked(), None);
    }

    #[test]
    fn timers_fire_with_exponential_backoff_and_cap() {
        let mut w: SenderWindow<u32> = SenderWindow::new(0, cfg(2, 8, 64));
        w.register(1, 7, 0);
        // Collect the rounds in which the entry fires over a long horizon.
        let mut fired = Vec::new();
        for round in 0..200 {
            for r in w.due(round) {
                assert_eq!(r.rid, 0);
                assert_eq!(r.item, 7);
                fired.push((round, r.attempt));
            }
        }
        assert!(fired.len() >= 10, "unacked entry must keep firing");
        // Attempts are sequential and gaps never exceed cap + jitter.
        for (i, &(round, attempt)) in fired.iter().enumerate() {
            assert_eq!(attempt as usize, i + 1);
            if i > 0 {
                let gap = round - fired[i - 1].0;
                assert!(gap >= 1 && gap <= 8 + 4, "gap {gap} outside cap+jitter");
            }
        }
        // The first firing uses the base rto (2 + jitter ≤ 1); the gap to
        // the second uses the doubled timeout (4 + jitter ≤ 2).
        assert!(fired[0].0 <= 3, "first retry must use the base rto");
        let first_gap = fired[1].0 - fired[0].0;
        assert!((4..=6).contains(&first_gap), "second retry must back off");
    }

    #[test]
    fn backoff_schedule_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut w: SenderWindow<u32> = SenderWindow::new(seed, cfg(2, 16, 64));
            w.register(1, 7, 0);
            let mut fired = Vec::new();
            for round in 0..100 {
                fired.extend(w.due(round).into_iter().map(|r| (round, r.attempt)));
            }
            fired
        };
        assert_eq!(run(3), run(3), "same seed, same schedule");
        assert_ne!(run(3), run(4), "jitter must be seed-dependent");
    }

    #[test]
    fn window_overflow_drops_oldest_and_counts() {
        let mut w: SenderWindow<u32> = SenderWindow::new(0, cfg(2, 4, 2));
        w.register(1, 10, 0);
        w.register(1, 11, 0);
        w.register(1, 12, 0); // overflows: rid 0 dropped from tracking
        assert_eq!(w.in_flight(), 2);
        assert_eq!(w.overflow_dropped, 1);
        let rids: Vec<u64> = w.due(100).iter().map(|r| r.rid).collect();
        assert_eq!(rids, vec![1, 2], "the oldest entry is gone");
    }

    #[test]
    fn due_respects_per_link_independence() {
        let mut w: SenderWindow<u32> = SenderWindow::new(9, cfg(2, 4, 8));
        w.register(1, 10, 0);
        w.register(2, 20, 0);
        w.ack(1, 1);
        let due: Vec<usize> = w.due(50).iter().map(|r| r.to).collect();
        assert_eq!(due, vec![2], "acked link must not retransmit");
        assert_eq!(w.oldest_unacked(), Some(0));
    }

    #[test]
    fn receiver_ledger_dedups_and_compacts_cum() {
        let mut l = ReceiverLedger::new();
        assert!(l.accept(3, 0));
        assert!(!l.accept(3, 0), "replay of rid 0 is a duplicate");
        assert_eq!(l.cum(3), 1);
        // Out of order: rid 2 before rid 1.
        assert!(l.accept(3, 2));
        assert_eq!(l.cum(3), 1, "gap at rid 1 blocks the cumulative ack");
        assert!(l.accept(3, 1));
        assert_eq!(l.cum(3), 3, "gap filled: cum jumps over the ooo set");
        assert!(!l.accept(3, 2), "late retransmit of rid 2 is a duplicate");
        assert_eq!(l.cum(5), 0, "unseen links ack nothing");
    }
}
