//! Deterministic, seeded fault-injection plane.
//!
//! The paper's correctness theorems assume perfect per-round delivery and a
//! stable head backbone. A [`FaultPlan`] lets the engine violate those
//! assumptions *deterministically*: every decision (drop this message?
//! crash this node?) is a pure function of `(fault_seed, round, ids)`
//! hashed through [`hinet_rt::rng::mix`], so the same plan replays exactly
//! — byte-for-byte identical traces for the same `--fault-seed` — and a
//! zero-fault plan is indistinguishable from no plan at all.
//!
//! Four fault classes are modelled:
//!
//! * **Message loss** — each delivery is dropped independently with a fixed
//!   probability, stored as parts-per-million ([`FaultPlan::loss_ppm`]) so
//!   plans stay `Eq`-comparable and hashable.
//! * **Crash/restart** — nodes crash on an explicit schedule
//!   ([`FaultPlan::crash_at`]) or per-round hazard rate
//!   ([`FaultPlan::crash_ppm`]); a crashed node loses its volatile protocol
//!   state (its initial tokens survive, and its *learned* tokens survive
//!   only when [`FaultPlan::durable_tokens`] is set), stays silent for
//!   [`FaultPlan::down_rounds`] rounds, then restarts fresh.
//! * **Head assassination** — [`FaultPlan::target_heads`] restricts the
//!   hazard-rate crashes to nodes currently serving as cluster heads, the
//!   worst case for the (T, L)-HiNet backbone.
//! * **Partitions** — [`Partition`] windows cut every link between two id
//!   ranges for a span of rounds.
//! * **Delay** — each surviving delivery is independently held back for
//!   `1..=max_delay` rounds with probability [`FaultPlan::delay_ppm`]; the
//!   held rounds are part of the hash stream, so replays are exact.
//! * **Duplication** — each surviving delivery is independently cloned with
//!   probability [`FaultPlan::dup_ppm`]; the receive plane deduplicates and
//!   counts the discards.
//! * **Reorder** — when [`FaultPlan::reorder`] is set, every node's
//!   per-round inbox is permuted by a seeded Fisher–Yates shuffle before
//!   the protocol sees it.
//!
//! ```
//! use hinet_sim::fault::FaultPlan;
//!
//! let plan = FaultPlan::new(7).with_loss_ppm(100_000); // 10 % loss, seed 7
//! // Decisions are pure: the same (round, from, to) always answers the same.
//! assert_eq!(
//!     plan.drops_message(3, 1, 2),
//!     FaultPlan::new(7).with_loss_ppm(100_000).drops_message(3, 1, 2),
//! );
//! assert!(!FaultPlan::none().drops_message(3, 1, 2));
//! ```

use hinet_rt::rng::mix;

/// Domain-separation tags so the loss stream and the crash stream are
/// decorrelated even for the same `(round, node)` arguments.
const TAG_LOSS: u64 = 0x4c4f_5353; // "LOSS"
const TAG_CRASH: u64 = 0x4352_5348; // "CRSH"
const TAG_DELAY: u64 = 0x444c_4159; // "DLAY"
const TAG_DUP: u64 = 0x4455_5053; // "DUPS"
const TAG_ORDER: u64 = 0x4f52_4452; // "ORDR"

/// One parts-per-million unit of the `u64` hash space. Probabilities are
/// compared as `hash < ppm * PPM_UNIT`, which is exact for every ppm value
/// up to a quantisation error of `< 1e-13` (the truncated remainder of
/// `u64::MAX / 1e6`).
const PPM_UNIT: u64 = u64::MAX / 1_000_000;

/// A network partition: every link between the low id range `[0, cut)` and
/// the high range `[cut, n)` is severed for rounds `start..end`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Partition {
    /// First round of the window (inclusive).
    pub start: usize,
    /// End of the window (exclusive).
    pub end: usize,
    /// Nodes with index `< cut` are on one side, the rest on the other.
    pub cut: usize,
}

impl Partition {
    /// Whether this window severs the `(a, b)` link in `round`.
    pub fn severs(&self, round: usize, a: usize, b: usize) -> bool {
        round >= self.start && round < self.end && ((a < self.cut) != (b < self.cut))
    }
}

/// A deterministic fault-injection plan.
///
/// Built with chained constructors from a seed; all fields are plain
/// integers so the plan is `Eq`/`Hash` and can live inside scenario keys.
/// See the [module docs](self) for the fault taxonomy.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct FaultPlan {
    /// Seed of the fault decision streams (independent from the
    /// topology/protocol seeds — changing it never perturbs the network).
    pub seed: u64,
    /// Per-delivery message-loss probability in parts per million.
    pub loss_ppm: u32,
    /// Per-node per-round crash hazard in parts per million.
    pub crash_ppm: u32,
    /// Explicit crash schedule: `(round, node)` pairs.
    pub crash_at: Vec<(usize, usize)>,
    /// How many rounds a crashed node stays down before restarting
    /// (minimum 1: the crash round itself).
    pub down_rounds: usize,
    /// Restrict hazard-rate crashes to nodes currently serving as cluster
    /// heads ("head assassination"). Scheduled crashes ignore this.
    pub target_heads: bool,
    /// Whether a crashed node's *learned* tokens survive the crash. Its
    /// initial (locally generated) tokens always survive.
    pub durable_tokens: bool,
    /// Partition windows.
    pub partitions: Vec<Partition>,
    /// Per-delivery delay probability in parts per million: a delayed
    /// delivery is held for `1..=max_delay` rounds instead of arriving in
    /// the round it was sent.
    pub delay_ppm: u32,
    /// Upper bound (inclusive, in rounds, minimum 1) on how long a delayed
    /// delivery is held.
    pub max_delay: usize,
    /// Per-delivery duplication probability in parts per million: a
    /// duplicated delivery arrives twice and the receive plane discards the
    /// clone.
    pub dup_ppm: u32,
    /// Permute every node's per-round inbox with a seeded shuffle before
    /// the protocol receives it.
    pub reorder: bool,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The empty plan: no faults, ever. [`FaultPlan::is_trivial`] is `true`.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            loss_ppm: 0,
            crash_ppm: 0,
            crash_at: Vec::new(),
            down_rounds: 1,
            target_heads: false,
            durable_tokens: false,
            partitions: Vec::new(),
            delay_ppm: 0,
            max_delay: 1,
            dup_ppm: 0,
            reorder: false,
        }
    }

    /// A plan with the given fault seed and no faults enabled yet.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::none()
        }
    }

    /// Set the message-loss probability in parts per million
    /// (`100_000` = 10 %; values ≥ 1 000 000 drop everything).
    pub fn with_loss_ppm(mut self, ppm: u32) -> Self {
        self.loss_ppm = ppm;
        self
    }

    /// Set the per-node per-round crash hazard in parts per million.
    pub fn with_crash_ppm(mut self, ppm: u32) -> Self {
        self.crash_ppm = ppm;
        self
    }

    /// Add a scheduled crash of `node` at `round`.
    pub fn with_crash_at(mut self, round: usize, node: usize) -> Self {
        self.crash_at.push((round, node));
        self
    }

    /// Set how many rounds a crashed node stays down (clamped to ≥ 1).
    pub fn with_down_rounds(mut self, rounds: usize) -> Self {
        self.down_rounds = rounds.max(1);
        self
    }

    /// Restrict hazard-rate crashes to current cluster heads.
    pub fn with_target_heads(mut self, target: bool) -> Self {
        self.target_heads = target;
        self
    }

    /// Set whether learned tokens survive a crash.
    pub fn with_durable_tokens(mut self, durable: bool) -> Self {
        self.durable_tokens = durable;
        self
    }

    /// Add a partition window.
    pub fn with_partition(mut self, p: Partition) -> Self {
        self.partitions.push(p);
        self
    }

    /// Set the per-delivery delay probability in parts per million.
    pub fn with_delay_ppm(mut self, ppm: u32) -> Self {
        self.delay_ppm = ppm;
        self
    }

    /// Set the maximum delivery delay in rounds (clamped to ≥ 1).
    pub fn with_max_delay(mut self, rounds: usize) -> Self {
        self.max_delay = rounds.max(1);
        self
    }

    /// Set the per-delivery duplication probability in parts per million.
    pub fn with_dup_ppm(mut self, ppm: u32) -> Self {
        self.dup_ppm = ppm;
        self
    }

    /// Enable (or disable) seeded inbox reordering.
    pub fn with_reorder(mut self, reorder: bool) -> Self {
        self.reorder = reorder;
        self
    }

    /// Whether this plan can never inject a fault — the engine skips all
    /// fault bookkeeping for trivial plans, so they are bit-identical to
    /// running without a plan.
    pub fn is_trivial(&self) -> bool {
        self.loss_ppm == 0
            && self.crash_ppm == 0
            && self.crash_at.is_empty()
            && self.partitions.is_empty()
            && self.delay_ppm == 0
            && self.dup_ppm == 0
            && !self.reorder
    }

    /// Whether the `(from, to)` link is severed by a partition in `round`.
    pub fn partitioned(&self, round: usize, from: usize, to: usize) -> bool {
        self.partitions.iter().any(|p| p.severs(round, from, to))
    }

    /// Whether the delivery `from → to` in `round` is lost — either to a
    /// partition window or to the seeded random-loss stream. Pure function
    /// of the plan and its arguments.
    pub fn drops_message(&self, round: usize, from: usize, to: usize) -> bool {
        if self.partitioned(round, from, to) {
            return true;
        }
        if self.loss_ppm == 0 {
            return false;
        }
        if self.loss_ppm >= 1_000_000 {
            return true;
        }
        let h = mix(
            self.seed,
            mix(TAG_LOSS, mix(round as u64, mix(from as u64, to as u64))),
        );
        h < u64::from(self.loss_ppm) * PPM_UNIT
    }

    /// Whether `node` crashes at the start of `round` — scheduled crashes
    /// always fire; hazard-rate crashes fire per the seeded stream, gated
    /// on `is_head` when [`FaultPlan::target_heads`] is set.
    pub fn crashes(&self, round: usize, node: usize, is_head: bool) -> bool {
        if self.crash_at.contains(&(round, node)) {
            return true;
        }
        if self.crash_ppm == 0 || (self.target_heads && !is_head) {
            return false;
        }
        if self.crash_ppm >= 1_000_000 {
            return true;
        }
        let h = mix(self.seed, mix(TAG_CRASH, mix(round as u64, node as u64)));
        h < u64::from(self.crash_ppm) * PPM_UNIT
    }

    /// How many rounds the delivery `from → to` (the `seq`-th payload of
    /// that sender in `round`) is held back: `0` means it arrives on time,
    /// otherwise a value in `1..=max_delay`. Pure function of the plan and
    /// its arguments.
    pub fn delay_of(&self, round: usize, from: usize, to: usize, seq: u32) -> usize {
        if self.delay_ppm == 0 {
            return 0;
        }
        let h = mix(
            self.seed,
            mix(
                TAG_DELAY,
                mix(
                    round as u64,
                    mix(from as u64, mix(to as u64, u64::from(seq))),
                ),
            ),
        );
        if self.delay_ppm < 1_000_000 && h >= u64::from(self.delay_ppm) * PPM_UNIT {
            return 0;
        }
        // Derive the held-rounds count from a second mix so the fire/skip
        // decision and the duration are decorrelated.
        1 + (mix(h, TAG_DELAY) % self.max_delay as u64) as usize
    }

    /// Whether the delivery `from → to` (the `seq`-th payload of that
    /// sender in `round`) is duplicated in flight. Pure function of the
    /// plan and its arguments.
    pub fn duplicates(&self, round: usize, from: usize, to: usize, seq: u32) -> bool {
        if self.dup_ppm == 0 {
            return false;
        }
        if self.dup_ppm >= 1_000_000 {
            return true;
        }
        let h = mix(
            self.seed,
            mix(
                TAG_DUP,
                mix(
                    round as u64,
                    mix(from as u64, mix(to as u64, u64::from(seq))),
                ),
            ),
        );
        h < u64::from(self.dup_ppm) * PPM_UNIT
    }

    /// Permute `items` (node `node`'s inbox for `round`) with the seeded
    /// reorder stream — a Fisher–Yates shuffle whose swaps are pure hash
    /// decisions, so the same `(seed, round, node)` always yields the same
    /// permutation. No-op unless [`FaultPlan::reorder`] is set.
    pub fn shuffle<T>(&self, round: usize, node: usize, items: &mut [T]) {
        if !self.reorder || items.len() < 2 {
            return;
        }
        let key = mix(self.seed, mix(TAG_ORDER, mix(round as u64, node as u64)));
        for i in (1..items.len()).rev() {
            let j = (mix(key, i as u64) % (i as u64 + 1)) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_plan_never_faults() {
        let plan = FaultPlan::none();
        assert!(plan.is_trivial());
        for round in 0..50 {
            for a in 0..10 {
                for b in 0..10 {
                    assert!(!plan.drops_message(round, a, b));
                }
                assert!(!plan.crashes(round, a, true));
            }
        }
    }

    #[test]
    fn decisions_are_pure_and_seed_dependent() {
        let a = FaultPlan::new(1).with_loss_ppm(500_000);
        let b = FaultPlan::new(1).with_loss_ppm(500_000);
        let c = FaultPlan::new(2).with_loss_ppm(500_000);
        let mut differs = false;
        for round in 0..100 {
            assert_eq!(a.drops_message(round, 0, 1), b.drops_message(round, 0, 1));
            differs |= a.drops_message(round, 0, 1) != c.drops_message(round, 0, 1);
        }
        assert!(differs, "different seeds must give different streams");
    }

    #[test]
    fn loss_rate_is_approximately_ppm() {
        let plan = FaultPlan::new(9).with_loss_ppm(250_000); // 25 %
        let mut dropped = 0u32;
        let total = 10_000u32;
        for i in 0..total {
            if plan.drops_message(i as usize, (i % 37) as usize, (i % 41) as usize) {
                dropped += 1;
            }
        }
        let rate = f64::from(dropped) / f64::from(total);
        assert!((0.22..0.28).contains(&rate), "rate {rate} far from 0.25");
    }

    #[test]
    fn extreme_ppm_values_are_exact() {
        let all = FaultPlan::new(3).with_loss_ppm(1_000_000);
        let none = FaultPlan::new(3);
        for i in 0..100 {
            assert!(all.drops_message(i, 0, 1));
            assert!(!none.drops_message(i, 0, 1));
        }
    }

    #[test]
    fn scheduled_crashes_fire_exactly_once() {
        let plan = FaultPlan::new(0).with_crash_at(5, 2);
        assert!(!plan.is_trivial());
        assert!(plan.crashes(5, 2, false));
        assert!(!plan.crashes(5, 3, false));
        assert!(!plan.crashes(4, 2, false));
        assert!(!plan.crashes(6, 2, false));
    }

    #[test]
    fn head_targeting_gates_hazard_but_not_schedule() {
        let plan = FaultPlan::new(11)
            .with_crash_ppm(1_000_000)
            .with_target_heads(true)
            .with_crash_at(3, 7);
        assert!(plan.crashes(0, 0, true), "heads always crash at ppm 1e6");
        assert!(!plan.crashes(0, 0, false), "non-heads spared by targeting");
        assert!(
            plan.crashes(3, 7, false),
            "scheduled crash ignores targeting"
        );
    }

    #[test]
    fn partitions_sever_cross_links_in_window() {
        let plan = FaultPlan::new(0).with_partition(Partition {
            start: 2,
            end: 5,
            cut: 3,
        });
        assert!(plan.drops_message(2, 1, 4), "cross-cut link in window");
        assert!(plan.drops_message(4, 5, 0), "symmetric");
        assert!(!plan.drops_message(5, 1, 4), "window end is exclusive");
        assert!(!plan.drops_message(1, 1, 4), "before window");
        assert!(!plan.drops_message(3, 0, 2), "same side survives");
        assert!(!plan.drops_message(3, 3, 4), "same side survives");
    }

    #[test]
    fn loss_and_crash_streams_are_decorrelated() {
        // Same (round, node) arguments must not force the same answer in
        // both streams — the domain tags split them.
        let plan = FaultPlan::new(5)
            .with_loss_ppm(500_000)
            .with_crash_ppm(500_000);
        let mut differs = false;
        for i in 0..200 {
            differs |= plan.drops_message(i, i, i) != plan.crashes(i, i, true);
        }
        assert!(differs);
    }

    #[test]
    fn down_rounds_clamped_to_one() {
        assert_eq!(FaultPlan::new(0).with_down_rounds(0).down_rounds, 1);
        assert_eq!(FaultPlan::new(0).with_down_rounds(4).down_rounds, 4);
    }

    #[test]
    fn delay_dup_reorder_make_a_plan_non_trivial() {
        assert!(FaultPlan::none().is_trivial());
        assert!(!FaultPlan::new(0).with_delay_ppm(1).is_trivial());
        assert!(!FaultPlan::new(0).with_dup_ppm(1).is_trivial());
        assert!(!FaultPlan::new(0).with_reorder(true).is_trivial());
        // max_delay alone changes nothing: no delay stream to stretch.
        assert!(FaultPlan::new(0).with_max_delay(5).is_trivial());
    }

    #[test]
    fn delay_is_pure_bounded_and_seed_dependent() {
        let a = FaultPlan::new(1).with_delay_ppm(500_000).with_max_delay(3);
        let b = FaultPlan::new(1).with_delay_ppm(500_000).with_max_delay(3);
        let c = FaultPlan::new(9).with_delay_ppm(500_000).with_max_delay(3);
        let mut fired = false;
        let mut differs = false;
        for r in 0..200 {
            let d = a.delay_of(r, 0, 1, 0);
            assert_eq!(d, b.delay_of(r, 0, 1, 0), "delay stream must be pure");
            assert!(d <= 3, "delay {d} exceeds max_delay");
            fired |= d > 0;
            differs |= d != c.delay_of(r, 0, 1, 0);
        }
        assert!(fired, "50% delay must fire somewhere in 200 rounds");
        assert!(differs, "different seeds must give different delays");
    }

    #[test]
    fn delay_ppm_extremes_are_exact() {
        let always = FaultPlan::new(2)
            .with_delay_ppm(1_000_000)
            .with_max_delay(2);
        let never = FaultPlan::new(2).with_max_delay(2);
        for r in 0..100 {
            let d = always.delay_of(r, 3, 4, 1);
            assert!((1..=2).contains(&d), "ppm 1e6 must always delay");
            assert_eq!(never.delay_of(r, 3, 4, 1), 0);
        }
    }

    #[test]
    fn delay_max_delay_one_holds_exactly_one_round() {
        let plan = FaultPlan::new(7).with_delay_ppm(1_000_000);
        for r in 0..50 {
            assert_eq!(plan.delay_of(r, 0, 1, 0), 1);
        }
    }

    #[test]
    fn duplication_is_pure_and_distinct_per_seq() {
        let plan = FaultPlan::new(4).with_dup_ppm(500_000);
        let mut fired = false;
        let mut seq_differs = false;
        for r in 0..200 {
            assert_eq!(plan.duplicates(r, 0, 1, 0), plan.duplicates(r, 0, 1, 0));
            fired |= plan.duplicates(r, 0, 1, 0);
            seq_differs |= plan.duplicates(r, 0, 1, 0) != plan.duplicates(r, 0, 1, 1);
        }
        assert!(fired);
        assert!(seq_differs, "seq must be part of the dup key");
        assert!(FaultPlan::new(4)
            .with_dup_ppm(1_000_000)
            .duplicates(0, 0, 1, 0));
        assert!(!FaultPlan::new(4).duplicates(0, 0, 1, 0));
    }

    #[test]
    fn shuffle_is_a_pure_permutation_and_gated_on_reorder() {
        let plan = FaultPlan::new(3).with_reorder(true);
        let mut a: Vec<u32> = (0..16).collect();
        let mut b = a.clone();
        plan.shuffle(5, 2, &mut a);
        plan.shuffle(5, 2, &mut b);
        assert_eq!(a, b, "same key must give the same permutation");
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(
            sorted,
            (0..16).collect::<Vec<u32>>(),
            "must be a permutation"
        );
        assert_ne!(
            a, sorted,
            "16 elements all fixed is astronomically unlikely"
        );

        let mut c: Vec<u32> = (0..16).collect();
        plan.shuffle(6, 2, &mut c);
        assert_ne!(a, c, "round must be part of the shuffle key");

        let off = FaultPlan::new(3);
        let mut d: Vec<u32> = (0..16).collect();
        off.shuffle(5, 2, &mut d);
        assert_eq!(d, (0..16).collect::<Vec<u32>>(), "reorder off is a no-op");
    }
}
