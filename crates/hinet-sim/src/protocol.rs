//! The per-node protocol interface.

use crate::token::{TokenId, TokenSet};
use hinet_cluster::hierarchy::{ClusterId, Role};
use hinet_graph::graph::NodeId;

/// What a node can observe about round `round` before sending — its own
/// identity, its role and cluster under the current hierarchy, and its
/// current neighborhood. This is the paper's system model: nodes can probe
/// neighbors and know their own cluster status, nothing more.
#[derive(Clone, Copy, Debug)]
pub struct LocalView<'a> {
    /// This node.
    pub me: NodeId,
    /// Current round index.
    pub round: usize,
    /// Role under the round's hierarchy.
    pub role: Role,
    /// Cluster the node belongs to (`None` only for unclustered nodes in
    /// derived hierarchies).
    pub cluster: Option<ClusterId>,
    /// The node's cluster head (itself for a head).
    pub head: Option<NodeId>,
    /// The node's next hop toward its head: the head itself in 1-hop
    /// clusters, the parent in multi-hop (d-hop) clusters, `None` for
    /// heads and unclustered nodes.
    pub parent: Option<NodeId>,
    /// Sorted neighbor list in the round's topology.
    pub neighbors: &'a [NodeId],
}

/// Where an outgoing message goes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Destination {
    /// Wireless broadcast to all current neighbors.
    Broadcast,
    /// Directed send to one node — delivered only if the target is a
    /// current neighbor (members talk to their head this way).
    Unicast(NodeId),
}

/// An outgoing message: a destination plus the token payload. Communication
/// cost is `tokens.len()` per the paper's metric.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Outgoing {
    /// Delivery mode.
    pub dest: Destination,
    /// Token payload.
    pub tokens: Vec<TokenId>,
    /// Whether this message repeats a payload the protocol already sent
    /// (recovery retransmission). The engine counts and traces marked
    /// messages separately; delivery is unaffected.
    pub retransmit: bool,
}

impl Outgoing {
    /// Broadcast a single token.
    pub fn broadcast_one(t: TokenId) -> Self {
        Outgoing {
            dest: Destination::Broadcast,
            tokens: vec![t],
            retransmit: false,
        }
    }

    /// Broadcast a whole token set (Algorithm 2's `broadcast TA`).
    pub fn broadcast_set(ts: &TokenSet) -> Self {
        Outgoing {
            dest: Destination::Broadcast,
            tokens: ts.iter().copied().collect(),
            retransmit: false,
        }
    }

    /// Unicast a single token to `to`.
    pub fn unicast_one(to: NodeId, t: TokenId) -> Self {
        Outgoing {
            dest: Destination::Unicast(to),
            tokens: vec![t],
            retransmit: false,
        }
    }

    /// Unicast a whole token set to `to`.
    pub fn unicast_set(to: NodeId, ts: &TokenSet) -> Self {
        Outgoing {
            dest: Destination::Unicast(to),
            tokens: ts.iter().copied().collect(),
            retransmit: false,
        }
    }

    /// Mark this message as a recovery retransmission.
    pub fn mark_retransmit(mut self) -> Self {
        self.retransmit = true;
        self
    }
}

/// A delivered message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Incoming {
    /// Sender.
    pub from: NodeId,
    /// Whether the sender addressed this node specifically (unicast) rather
    /// than broadcasting.
    pub directed: bool,
    /// Token payload.
    pub tokens: Vec<TokenId>,
}

/// A per-node dissemination protocol.
///
/// The engine drives each node's instance through `on_start` once, then
/// `send`/`receive` once per round, in that order, for every node
/// simultaneously (messages sent in round `r` arrive within round `r`,
/// matching the synchronous model).
pub trait Protocol {
    /// Called once before round 0 with the node's initial tokens.
    fn on_start(&mut self, me: NodeId, initial: &[TokenId]);

    /// Produce this round's outgoing messages.
    fn send(&mut self, view: &LocalView<'_>) -> Vec<Outgoing>;

    /// Consume this round's delivered messages.
    fn receive(&mut self, view: &LocalView<'_>, inbox: &[Incoming]);

    /// The tokens this node has collected so far (`TA`) — read by the
    /// completion oracle.
    fn known(&self) -> &TokenSet;

    /// Whether the protocol has terminated locally (run out of phases).
    /// Terminated nodes stop sending; the engine may keep running others.
    fn finished(&self) -> bool {
        false
    }
}

impl<T: Protocol + ?Sized> Protocol for Box<T> {
    fn on_start(&mut self, me: NodeId, initial: &[TokenId]) {
        (**self).on_start(me, initial)
    }
    fn send(&mut self, view: &LocalView<'_>) -> Vec<Outgoing> {
        (**self).send(view)
    }
    fn receive(&mut self, view: &LocalView<'_>, inbox: &[Incoming]) {
        (**self).receive(view, inbox)
    }
    fn known(&self) -> &TokenSet {
        (**self).known()
    }
    fn finished(&self) -> bool {
        (**self).finished()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outgoing_constructors() {
        let ts: TokenSet = [TokenId(2), TokenId(1)].into_iter().collect();
        let b = Outgoing::broadcast_set(&ts);
        assert_eq!(b.dest, Destination::Broadcast);
        assert_eq!(b.tokens, vec![TokenId(1), TokenId(2)], "sorted payload");
        let u = Outgoing::unicast_one(NodeId(3), TokenId(9));
        assert_eq!(u.dest, Destination::Unicast(NodeId(3)));
        assert_eq!(u.tokens.len(), 1);
        assert_eq!(Outgoing::broadcast_one(TokenId(5)).tokens, vec![TokenId(5)]);
        assert_eq!(
            Outgoing::unicast_set(NodeId(1), &ts).tokens,
            vec![TokenId(1), TokenId(2)]
        );
        assert!(!b.retransmit, "constructors build fresh sends");
        assert!(
            Outgoing::broadcast_one(TokenId(5))
                .mark_retransmit()
                .retransmit
        );
    }
}
