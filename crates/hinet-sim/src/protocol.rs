//! The per-node protocol interface.

use crate::token::{TokenId, TokenSet};
use hinet_cluster::hierarchy::{ClusterId, Role};
use hinet_graph::graph::NodeId;
use std::sync::Arc;

/// What a node can observe about round `round` before sending — its own
/// identity, its role and cluster under the current hierarchy, and its
/// current neighborhood. This is the paper's system model: nodes can probe
/// neighbors and know their own cluster status, nothing more.
#[derive(Clone, Copy, Debug)]
pub struct LocalView<'a> {
    /// This node.
    pub me: NodeId,
    /// Current round index.
    pub round: usize,
    /// Role under the round's hierarchy.
    pub role: Role,
    /// Cluster the node belongs to (`None` only for unclustered nodes in
    /// derived hierarchies).
    pub cluster: Option<ClusterId>,
    /// The node's cluster head (itself for a head).
    pub head: Option<NodeId>,
    /// The node's next hop toward its head: the head itself in 1-hop
    /// clusters, the parent in multi-hop (d-hop) clusters, `None` for
    /// heads and unclustered nodes.
    pub parent: Option<NodeId>,
    /// Sorted neighbor list in the round's topology.
    pub neighbors: &'a [NodeId],
}

/// Where an outgoing message goes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Destination {
    /// Wireless broadcast to all current neighbors.
    Broadcast,
    /// Directed send to one node — delivered only if the target is a
    /// current neighbor (members talk to their head this way).
    Unicast(NodeId),
}

/// A message payload: either a single token (the per-round selections of
/// Algorithm 1 and KLO) or a whole token set (Algorithm 2's `broadcast
/// TA`, flooding).
///
/// Single-token pushes carry the id inline — no allocation per message.
/// Set payloads are `Arc`-shared: a broadcast delivered to a thousand
/// neighbors clones a refcount, not a bitset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Payload {
    /// Exactly one token.
    One(TokenId),
    /// A whole token set, shared between all its deliveries.
    Set(Arc<TokenSet>),
}

impl Payload {
    /// Number of tokens carried — the paper's per-message cost.
    pub fn len(&self) -> usize {
        match self {
            Payload::One(_) => 1,
            Payload::Set(s) => s.len(),
        }
    }

    /// Whether the payload carries no tokens (an empty set — the engine
    /// drops such sends for free).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The smallest carried token id — what the trace schema records as
    /// the message's representative `token`.
    pub fn first(&self) -> Option<TokenId> {
        match self {
            Payload::One(t) => Some(*t),
            Payload::Set(s) => s.min(),
        }
    }

    /// Ascending iterator over the carried tokens.
    pub fn iter(&self) -> PayloadIter<'_> {
        match self {
            Payload::One(t) => PayloadIter::One(Some(*t)),
            Payload::Set(s) => PayloadIter::Set(s.iter()),
        }
    }

    /// Union the carried tokens into `ta` — word-parallel for set
    /// payloads, a single bit-set for one-token pushes.
    pub fn union_into(&self, ta: &mut TokenSet) {
        match self {
            Payload::One(t) => {
                ta.insert(*t);
            }
            Payload::Set(s) => ta.union_with(s),
        }
    }

    /// Materialise the tokens in ascending order (test/debug helper).
    pub fn to_vec(&self) -> Vec<TokenId> {
        self.iter().collect()
    }
}

/// Ascending iterator over a [`Payload`]'s tokens.
pub enum PayloadIter<'a> {
    /// Single-token payload.
    One(Option<TokenId>),
    /// Set payload.
    Set(crate::token::Iter<'a>),
}

impl Iterator for PayloadIter<'_> {
    type Item = TokenId;
    fn next(&mut self) -> Option<TokenId> {
        match self {
            PayloadIter::One(t) => t.take(),
            PayloadIter::Set(it) => it.next(),
        }
    }
}

/// An outgoing message: a destination plus the token payload. Communication
/// cost is `payload.len()` per the paper's metric.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Outgoing {
    /// Delivery mode.
    pub dest: Destination,
    /// Token payload.
    pub payload: Payload,
    /// Whether this message repeats a payload the protocol already sent
    /// (recovery retransmission). The engine counts and traces marked
    /// messages separately; delivery is unaffected.
    pub retransmit: bool,
}

impl Outgoing {
    /// Broadcast a single token.
    pub fn broadcast_one(t: TokenId) -> Self {
        Outgoing {
            dest: Destination::Broadcast,
            payload: Payload::One(t),
            retransmit: false,
        }
    }

    /// Broadcast a whole token set (Algorithm 2's `broadcast TA`).
    pub fn broadcast_set(ts: &TokenSet) -> Self {
        Outgoing {
            dest: Destination::Broadcast,
            payload: Payload::Set(Arc::new(ts.clone())),
            retransmit: false,
        }
    }

    /// Unicast a single token to `to`.
    pub fn unicast_one(to: NodeId, t: TokenId) -> Self {
        Outgoing {
            dest: Destination::Unicast(to),
            payload: Payload::One(t),
            retransmit: false,
        }
    }

    /// Unicast a whole token set to `to`.
    pub fn unicast_set(to: NodeId, ts: &TokenSet) -> Self {
        Outgoing {
            dest: Destination::Unicast(to),
            payload: Payload::Set(Arc::new(ts.clone())),
            retransmit: false,
        }
    }

    /// Mark this message as a recovery retransmission.
    pub fn mark_retransmit(mut self) -> Self {
        self.retransmit = true;
        self
    }
}

/// A delivered message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Incoming {
    /// Sender.
    pub from: NodeId,
    /// Whether the sender addressed this node specifically (unicast) rather
    /// than broadcasting.
    pub directed: bool,
    /// Token payload — shared with every other receiver of the same
    /// broadcast.
    pub payload: Payload,
}

impl Incoming {
    /// A directed single-token delivery (test helper).
    pub fn one(from: NodeId, directed: bool, t: TokenId) -> Self {
        Incoming {
            from,
            directed,
            payload: Payload::One(t),
        }
    }

    /// A set delivery (test helper) — tokens are collected into a shared
    /// set payload.
    pub fn set(from: NodeId, directed: bool, tokens: &[TokenId]) -> Self {
        Incoming {
            from,
            directed,
            payload: Payload::Set(Arc::new(tokens.iter().copied().collect())),
        }
    }
}

/// A per-node dissemination protocol.
///
/// The engine drives each node's instance through `on_start` once, then
/// `send`/`receive` once per round, in that order, for every node
/// simultaneously (messages sent in round `r` arrive within round `r`,
/// matching the synchronous model).
pub trait Protocol {
    /// Called once before round 0 with the node's initial tokens.
    fn on_start(&mut self, me: NodeId, initial: &[TokenId]);

    /// Produce this round's outgoing messages.
    fn send(&mut self, view: &LocalView<'_>) -> Vec<Outgoing>;

    /// Consume this round's delivered messages.
    fn receive(&mut self, view: &LocalView<'_>, inbox: &[Incoming]);

    /// The tokens this node has collected so far (`TA`) — read by the
    /// completion oracle.
    fn known(&self) -> &TokenSet;

    /// Whether the protocol has terminated locally (run out of phases).
    /// Terminated nodes stop sending; the engine may keep running others.
    fn finished(&self) -> bool {
        false
    }

    /// Reset this node after a fault-plane crash: all volatile state is
    /// discarded and the node restarts as if freshly constructed with
    /// `retained` as its initial tokens (its originals, or everything it
    /// had learned when the plan declares tokens durable). Must be
    /// observably identical to constructing a new instance and calling
    /// [`Protocol::on_start`] with `retained`.
    ///
    /// The default panics: only protocols run under crash-injecting
    /// [`crate::fault::FaultPlan`]s need to implement it.
    fn on_restart(&mut self, me: NodeId, retained: &[TokenId]) {
        let _ = (me, retained);
        panic!("this protocol does not support crash-restart");
    }
}

impl<T: Protocol + ?Sized> Protocol for Box<T> {
    fn on_start(&mut self, me: NodeId, initial: &[TokenId]) {
        (**self).on_start(me, initial)
    }
    fn send(&mut self, view: &LocalView<'_>) -> Vec<Outgoing> {
        (**self).send(view)
    }
    fn receive(&mut self, view: &LocalView<'_>, inbox: &[Incoming]) {
        (**self).receive(view, inbox)
    }
    fn known(&self) -> &TokenSet {
        (**self).known()
    }
    fn finished(&self) -> bool {
        (**self).finished()
    }
    fn on_restart(&mut self, me: NodeId, retained: &[TokenId]) {
        (**self).on_restart(me, retained)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outgoing_constructors() {
        let ts: TokenSet = [TokenId(2), TokenId(1)].into_iter().collect();
        let b = Outgoing::broadcast_set(&ts);
        assert_eq!(b.dest, Destination::Broadcast);
        assert_eq!(
            b.payload.to_vec(),
            vec![TokenId(1), TokenId(2)],
            "sorted payload"
        );
        let u = Outgoing::unicast_one(NodeId(3), TokenId(9));
        assert_eq!(u.dest, Destination::Unicast(NodeId(3)));
        assert_eq!(u.payload.len(), 1);
        assert_eq!(
            Outgoing::broadcast_one(TokenId(5)).payload.to_vec(),
            vec![TokenId(5)]
        );
        assert_eq!(
            Outgoing::unicast_set(NodeId(1), &ts).payload.to_vec(),
            vec![TokenId(1), TokenId(2)]
        );
        assert!(!b.retransmit, "constructors build fresh sends");
        assert!(
            Outgoing::broadcast_one(TokenId(5))
                .mark_retransmit()
                .retransmit
        );
    }

    #[test]
    fn payload_accessors() {
        let one = Payload::One(TokenId(7));
        assert_eq!(one.len(), 1);
        assert!(!one.is_empty());
        assert_eq!(one.first(), Some(TokenId(7)));
        assert_eq!(one.to_vec(), vec![TokenId(7)]);

        let set = Payload::Set(Arc::new([TokenId(9), TokenId(4)].into_iter().collect()));
        assert_eq!(set.len(), 2);
        assert_eq!(set.first(), Some(TokenId(4)), "first = smallest id");
        assert_eq!(set.to_vec(), vec![TokenId(4), TokenId(9)]);

        let empty = Payload::Set(Arc::new(TokenSet::new()));
        assert!(empty.is_empty());
        assert_eq!(empty.first(), None);

        let mut ta = TokenSet::new();
        one.union_into(&mut ta);
        set.union_into(&mut ta);
        assert_eq!(ta.len(), 3);
        assert!(ta.contains(&TokenId(7)) && ta.contains(&TokenId(4)) && ta.contains(&TokenId(9)));
    }

    #[test]
    fn incoming_helpers() {
        let m = Incoming::one(NodeId(2), true, TokenId(5));
        assert!(m.directed);
        assert_eq!(m.payload.to_vec(), vec![TokenId(5)]);
        let s = Incoming::set(NodeId(1), false, &[TokenId(3), TokenId(1)]);
        assert!(!s.directed);
        assert_eq!(s.payload.to_vec(), vec![TokenId(1), TokenId(3)]);
    }
}
