//! # hinet-sim
//!
//! Synchronous round-based message-passing simulator.
//!
//! The paper's execution model (inherited from Kuhn–Lynch–Oshman) is the
//! synchronous dynamic-network model: time is divided into rounds; in round
//! `r` every node sends, the adversary's graph `G_r` determines who hears
//! whom, and every node receives before round `r+1`. This crate implements
//! exactly that model:
//!
//! * [`token::TokenId`] / [`token::TokenSet`] — the opaque, totally ordered
//!   tokens of the k-token dissemination problem.
//! * [`protocol::Protocol`] — the per-node state machine interface
//!   (send/receive per round with a [`protocol::LocalView`] of the node's
//!   role, cluster and neighborhood).
//! * [`engine`] — the round loop, message delivery (broadcast and
//!   head-unicast), the completion oracle, and cost accounting. The
//!   communication metric matches the paper's: **total number of tokens
//!   sent** (a broadcast of one token counts once, not once per receiver),
//!   with packets and per-role breakdowns recorded alongside.
//!
//! The [`fault`] module adds a deterministic, seeded fault-injection plane
//! ([`fault::FaultPlan`]): message loss, crash/restart schedules and hazard
//! rates, head-targeted crashes, and partition windows — threaded through
//! [`engine::Engine::run_faulted`] so degraded runs replay exactly and
//! report a structured [`engine::Outcome`] instead of a bare bool.
//!
//! For per-round visibility, [`engine::Engine::run_traced`] additionally
//! streams typed [`hinet_rt::obs`] events (round starts, token pushes,
//! head broadcasts, re-affiliations, run end) into a
//! [`hinet_rt::obs::Tracer`]; `Engine::run` is the same loop with a
//! disabled tracer.

pub mod engine;
pub mod fault;
pub mod protocol;
pub mod token;

pub use engine::{
    CostWeights, Engine, MessageRecord, Metrics, Outcome, RoundMetrics, RunConfig, RunReport,
};
pub use fault::{FaultPlan, Partition};
pub use protocol::{Incoming, LocalView, Outgoing, Protocol};
pub use token::{TokenId, TokenSet};
