//! # hinet-sim
//!
//! Round-based message-passing simulator with two execution modes:
//! deterministic lock-step (the default) and an event-driven mailbox
//! runtime ([`engine::ExecMode::Event`]) that runs the same protocols over
//! a [`transport::Transport`] with per-node mailboxes and round
//! reassembly, reporting wall-clock throughput and latency alongside the
//! round counts.
//!
//! The paper's execution model (inherited from Kuhn–Lynch–Oshman) is the
//! synchronous dynamic-network model: time is divided into rounds; in round
//! `r` every node sends, the adversary's graph `G_r` determines who hears
//! whom, and every node receives before round `r+1`. This crate implements
//! exactly that model:
//!
//! * [`token::TokenId`] / [`token::TokenSet`] — the tokens of the k-token
//!   dissemination problem; `TokenSet` is a word-packed bitset over the
//!   dense id universe, sized for the n = 10^6, k = 10^4 scale target.
//! * [`protocol::Protocol`] — the per-node state machine interface
//!   (send/receive per round with a [`protocol::LocalView`] of the node's
//!   role, cluster and neighborhood), exchanging [`protocol::Payload`]
//!   messages (`One` token or an `Arc`-shared packed `Set`).
//! * [`engine`] — the round loop, message delivery (broadcast and
//!   head-unicast), the completion oracle, and cost accounting, behind the
//!   single entry point [`engine::Engine::run`]. The communication metric
//!   matches the paper's: **total number of tokens sent** (a broadcast of
//!   one token counts once, not once per receiver), with packets and
//!   per-role breakdowns recorded alongside.
//!
//! Every execution mode is [`engine::RunConfig`] state on that one entry
//! point: the [`fault`] module's deterministic, seeded fault-injection
//! plane ([`fault::FaultPlan`] — message loss, crash/restart schedules and
//! hazard rates, head-targeted crashes, partition windows, plus the
//! adversarial delivery pathologies: per-message delay, duplication and
//! inbox reorder) rides in via [`engine::RunConfig::faults`], so degraded
//! runs replay exactly and report a structured [`engine::Outcome`] instead
//! of a bare bool; the [`reliable`] ack/timeout/backoff layer
//! ([`engine::RunConfig::reliable`]) lets every algorithm recover under
//! loss and delay through one code path; and
//! per-round visibility comes from handing the config a
//! [`hinet_rt::obs::Tracer`] via [`engine::RunConfig::tracer`], which
//! streams typed [`hinet_rt::obs`] events (round starts, token pushes,
//! head broadcasts, re-affiliations, run end) without perturbing the run.

// The doc gate (`RUSTDOCFLAGS="-D warnings" cargo doc`) denies this: every
// public item of the simulator — the transport/runtime surface included —
// must be documented.
#![warn(missing_docs)]

pub mod engine;
mod event;
pub mod fault;
pub mod protocol;
pub mod reliable;
pub mod token;
pub mod transport;

pub use engine::{
    CostWeights, Engine, ExecMode, MessageRecord, Metrics, NodeStall, Outcome, RoundMetrics,
    RunConfig, RunReport, StallDiag, TokenLatency, WallClock,
};
pub use fault::{FaultPlan, Partition};
pub use protocol::{Incoming, LocalView, Outgoing, Protocol};
pub use token::{TokenId, TokenSet};
