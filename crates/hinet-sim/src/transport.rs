//! Message-plane transport: `(round, sender)`-tagged envelopes, per-node
//! mailboxes, and round reassembly for the event-driven execution mode.
//!
//! The lock-step engine delivers messages by writing them straight into
//! per-node inbox vectors between the send and receive phases of a round.
//! The event-driven runtime ([`crate::engine::ExecMode::Event`]) has no
//! global round barrier, so delivery is abstracted behind the
//! [`Transport`] trait instead: senders enqueue [`Envelope`]s tagged with
//! `(round, sender, seq)`, each node drains its mailbox whenever it gets
//! scheduled, and a per-node [`RoundBuffer`] reassembles whatever arrived
//! — in any order — back into complete synchronous rounds.
//!
//! A node's step for round `r` is released only once its *neighbourhood
//! quorum* for `r` is met: every round-`r` neighbour has delivered its
//! [`EnvelopeKind::RoundDone`] marker (a sender flushes exactly one marker
//! per neighbour per round, after its payload envelopes). Because markers
//! arrive from precisely the round's neighbours, counting them against the
//! node's round-`r` degree is a complete quorum test; payloads buffered
//! for future rounds simply wait in the [`RoundBuffer`].
//!
//! The only backend in-tree is [`ChannelTransport`] — lock-protected
//! in-process mailboxes with a wakeup hook, which is what the engine's
//! worker pool runs on. A socket relay backend can implement the same
//! trait later without touching the engine (see `docs/RUNTIME.md`).

use crate::protocol::{Incoming, Payload};
use hinet_graph::graph::NodeId;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// What an [`Envelope`] carries.
#[derive(Clone, Debug)]
pub enum EnvelopeKind {
    /// A protocol payload destined for the receiver's round-`r` inbox.
    Payload {
        /// The token payload.
        payload: Payload,
        /// Whether the payload travelled as a unicast (directed) rather
        /// than a broadcast — preserved into [`Incoming::directed`].
        directed: bool,
        /// Per-link reliable delivery id (monotone per `(sender, receiver)`
        /// link, reused verbatim on retransmission) — the key the
        /// [`crate::reliable`] layer acks and dedups on. Always 0 when the
        /// reliability layer is off.
        rid: u64,
    },
    /// End-of-round marker: the sender has emitted everything it will send
    /// for this round. One marker per `(sender, neighbour, round)`; the
    /// receiver's quorum for the round is met when its marker count
    /// reaches its round degree. Markers model the synchronous round
    /// structure itself, so the fault plane never drops, delays or
    /// duplicates them — delivery pathologies intercept payload envelopes
    /// only.
    RoundDone {
        /// Piggybacked cumulative ack for the *reverse* direction of this
        /// link: every reliable id `< ack` sent by the marker's receiver to
        /// the marker's sender has been accepted. Always 0 when the
        /// reliability layer is off.
        ack: u64,
    },
}

/// One message in flight: a `(round, sender)`-tagged unit of delivery.
///
/// `seq` numbers the sender's payload envelopes within the round so the
/// receiver's [`RoundBuffer`] can restore emission order no matter how
/// delivery interleaved; sorting by `(from, seq)` reproduces exactly the
/// inbox the lock-step engine would have built.
#[derive(Clone, Debug)]
pub struct Envelope {
    /// Round the message belongs to.
    pub round: usize,
    /// Sending node.
    pub from: NodeId,
    /// Destination node.
    pub to: NodeId,
    /// Per-`(round, sender)` emission sequence number.
    pub seq: u32,
    /// Payload or end-of-round marker.
    pub kind: EnvelopeKind,
}

/// Wakeup hook invoked by a transport after mail lands for a node.
pub type Notifier = Arc<dyn Fn(usize) + Send + Sync>;

/// Delivery abstraction for the event-driven runtime.
///
/// The contract (documented in full in `docs/RUNTIME.md`):
///
/// * [`Transport::send`] may be called concurrently from any worker and
///   must make the envelope eventually visible to a
///   [`Transport::drain`] of its destination node;
/// * envelopes from one sender to one receiver are delivered in send
///   order (per-link FIFO) — reordering *across* senders is expected and
///   is what the [`RoundBuffer`] undoes;
/// * after an envelope becomes drainable the registered [`Notifier`] is
///   invoked with the destination node, so a parked worker can wake;
/// * the transport itself never drops, duplicates or reorders-within-link —
///   loss/partition/delay/duplication faults are injected by the engine
///   *around* `send` (dropped envelopes are never sent, delayed ones are
///   held at the sender and re-sent later, duplicated ones are sent twice),
///   so fault semantics are identical in both execution modes and the
///   receive plane ([`RoundBuffer`]) defensively deduplicates whatever a
///   real backend might replay.
pub trait Transport: Send + Sync {
    /// Queue `env` for its destination node.
    fn send(&self, env: Envelope);

    /// Move every envelope currently queued for `node` into `into`
    /// (appending, preserving arrival order) and return how many moved.
    fn drain(&self, node: usize, into: &mut Vec<Envelope>) -> usize;

    /// Register the wakeup hook invoked after new mail lands for a node.
    fn set_notifier(&self, notify: Notifier);

    /// High-water mark of any single mailbox's queued-envelope count
    /// (the `mailbox_depth_max` observability counter). Backends that do
    /// not track depth may return 0.
    fn max_depth(&self) -> usize {
        0
    }
}

/// In-process channel backend: one lock-protected mailbox per node plus a
/// wakeup hook — the [`Transport`] the engine's worker pool runs on.
pub struct ChannelTransport {
    boxes: Vec<Mutex<Vec<Envelope>>>,
    notify: RwLock<Option<Notifier>>,
    depth_max: AtomicUsize,
}

impl ChannelTransport {
    /// A transport with `n` empty mailboxes.
    pub fn new(n: usize) -> ChannelTransport {
        ChannelTransport {
            boxes: (0..n).map(|_| Mutex::new(Vec::new())).collect(),
            notify: RwLock::new(None),
            depth_max: AtomicUsize::new(0),
        }
    }
}

impl Transport for ChannelTransport {
    fn send(&self, env: Envelope) {
        let to = env.to.index();
        let depth = {
            let mut mailbox = self.boxes[to].lock().expect("mailbox lock");
            mailbox.push(env);
            mailbox.len()
        };
        self.depth_max.fetch_max(depth, Ordering::Relaxed);
        if let Some(notify) = self.notify.read().expect("notifier lock").as_ref() {
            notify(to);
        }
    }

    fn drain(&self, node: usize, into: &mut Vec<Envelope>) -> usize {
        let mut mailbox = self.boxes[node].lock().expect("mailbox lock");
        let moved = mailbox.len();
        into.append(&mut mailbox);
        moved
    }

    fn set_notifier(&self, notify: Notifier) {
        *self.notify.write().expect("notifier lock") = Some(notify);
    }

    fn max_depth(&self) -> usize {
        self.depth_max.load(Ordering::Relaxed)
    }
}

/// One round's reassembly slot.
#[derive(Debug, Default)]
struct Slot {
    /// Payload envelopes received for the round, in arrival order:
    /// `(from, seq, rid, payload, directed)`.
    msgs: Vec<(NodeId, u32, u64, Payload, bool)>,
    /// [`EnvelopeKind::RoundDone`] markers received for the round, with
    /// their piggybacked reverse-direction acks.
    markers: Vec<(NodeId, u64)>,
}

/// Everything [`RoundBuffer::take_round`] releases for one round.
#[derive(Debug, Default)]
pub struct TakenRound {
    /// The reassembled inbox in canonical lock-step order.
    pub inbox: Vec<Incoming>,
    /// Reliable delivery ids, parallel to `inbox` (all 0 when the
    /// reliability layer is off).
    pub rids: Vec<u64>,
    /// `(marker sender, piggybacked cumulative ack)` per round-done marker,
    /// sorted by sender id.
    pub acks: Vec<(NodeId, u64)>,
    /// Duplicate `(round, sender, seq)` payloads discarded from this round.
    pub dups_discarded: u64,
}

/// Per-node round reassembly: buckets out-of-order envelopes by round and
/// releases a round's inbox only once the neighbourhood quorum is met.
///
/// ```
/// use hinet_graph::graph::NodeId;
/// use hinet_sim::protocol::Payload;
/// use hinet_sim::token::TokenId;
/// use hinet_sim::transport::{Envelope, EnvelopeKind, RoundBuffer};
///
/// let mut buf = RoundBuffer::new();
/// // A future-round payload arrives early: buffered, round 0 not ready.
/// buf.push(Envelope {
///     round: 1,
///     from: NodeId(2),
///     to: NodeId(0),
///     seq: 0,
///     kind: EnvelopeKind::Payload {
///         payload: Payload::One(TokenId(7)),
///         directed: false,
///         rid: 0,
///     },
/// });
/// assert!(!buf.ready(0, 1));
/// // The round-0 marker from the single neighbour releases round 0.
/// buf.push(Envelope {
///     round: 0,
///     from: NodeId(2),
///     to: NodeId(0),
///     seq: 0,
///     kind: EnvelopeKind::RoundDone { ack: 0 },
/// });
/// assert!(buf.ready(0, 1));
/// assert!(buf.take(0).is_empty());
/// assert!(!buf.ready(1, 1), "round 1 still lacks its marker");
/// ```
#[derive(Debug, Default)]
pub struct RoundBuffer {
    slots: BTreeMap<usize, Slot>,
    dups_discarded: u64,
}

impl RoundBuffer {
    /// An empty buffer.
    pub fn new() -> RoundBuffer {
        RoundBuffer::default()
    }

    /// File one envelope into its round slot.
    pub fn push(&mut self, env: Envelope) {
        let slot = self.slots.entry(env.round).or_default();
        match env.kind {
            EnvelopeKind::Payload {
                payload,
                directed,
                rid,
            } => {
                slot.msgs.push((env.from, env.seq, rid, payload, directed));
            }
            EnvelopeKind::RoundDone { ack } => slot.markers.push((env.from, ack)),
        }
    }

    /// Whether round `round`'s quorum is met: at least `quorum` end-of-round
    /// markers have arrived (`quorum` = the node's degree in the round
    /// graph; an isolated node's quorum of 0 is trivially met).
    pub fn ready(&self, round: usize, quorum: usize) -> bool {
        quorum == 0
            || self
                .slots
                .get(&round)
                .is_some_and(|slot| slot.markers.len() >= quorum)
    }

    /// Release round `round`'s inbox, sorted into the canonical lock-step
    /// order (ascending sender id, then per-sender emission order), and
    /// drop the slot. Rounds are taken at most once.
    ///
    /// The buffer does not trust `(sender, seq)` uniqueness: a transport
    /// replay or an injected duplication fault can deliver the same
    /// envelope twice, so duplicates are discarded here (first arrival
    /// wins) and counted exactly in [`TakenRound::dups_discarded`] /
    /// [`RoundBuffer::dups_discarded`].
    pub fn take(&mut self, round: usize) -> Vec<Incoming> {
        self.take_round(round).inbox
    }

    /// [`RoundBuffer::take`] plus the reliability-plane side channels: the
    /// per-payload reliable ids and the acks piggybacked on the round's
    /// markers.
    pub fn take_round(&mut self, round: usize) -> TakenRound {
        let Some(mut slot) = self.slots.remove(&round) else {
            return TakenRound::default();
        };
        slot.msgs
            .sort_by_key(|&(from, seq, _, _, _)| (from.index(), seq));
        let before = slot.msgs.len();
        slot.msgs
            .dedup_by_key(|&mut (from, seq, _, _, _)| (from, seq));
        let dups = (before - slot.msgs.len()) as u64;
        self.dups_discarded += dups;
        let mut rids = Vec::with_capacity(slot.msgs.len());
        let inbox = slot
            .msgs
            .into_iter()
            .map(|(from, _, rid, payload, directed)| {
                rids.push(rid);
                Incoming {
                    from,
                    directed,
                    payload,
                }
            })
            .collect();
        let mut acks = slot.markers;
        acks.sort_by_key(|&(from, _)| from.index());
        TakenRound {
            inbox,
            rids,
            acks,
            dups_discarded: dups,
        }
    }

    /// Total duplicate payloads this buffer has discarded across all taken
    /// rounds (the `dups_discarded` observability gauge).
    pub fn dups_discarded(&self) -> u64 {
        self.dups_discarded
    }

    /// The subset of `neighbors` whose round-`round` marker has not arrived
    /// yet — the senders blocking this node's quorum (stall-watchdog
    /// diagnostics).
    pub fn missing_markers(&self, round: usize, neighbors: &[NodeId]) -> Vec<NodeId> {
        match self.slots.get(&round) {
            None => neighbors.to_vec(),
            Some(slot) => neighbors
                .iter()
                .copied()
                .filter(|v| !slot.markers.iter().any(|&(from, _)| from == *v))
                .collect(),
        }
    }

    /// Number of rounds currently buffered (complete or partial).
    pub fn pending_rounds(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::TokenId;

    fn payload_env(round: usize, from: usize, seq: u32, token: u64) -> Envelope {
        Envelope {
            round,
            from: NodeId::from_index(from),
            to: NodeId(0),
            seq,
            kind: EnvelopeKind::Payload {
                payload: Payload::One(TokenId(token)),
                directed: false,
                rid: 0,
            },
        }
    }

    fn done_env(round: usize, from: usize) -> Envelope {
        Envelope {
            round,
            from: NodeId::from_index(from),
            to: NodeId(0),
            seq: u32::MAX,
            kind: EnvelopeKind::RoundDone { ack: 0 },
        }
    }

    #[test]
    fn reassembles_shuffled_delivery_into_sender_order() {
        let mut buf = RoundBuffer::new();
        // Arrival order scrambled across senders and within sender 1.
        buf.push(payload_env(0, 2, 0, 20));
        buf.push(payload_env(0, 1, 1, 11));
        buf.push(done_env(0, 2));
        buf.push(payload_env(0, 1, 0, 10));
        buf.push(done_env(0, 1));
        assert!(buf.ready(0, 2));
        let inbox = buf.take(0);
        let tokens: Vec<u64> = inbox.iter().map(|m| m.payload.first().unwrap().0).collect();
        assert_eq!(tokens, vec![10, 11, 20], "(from, seq) order restored");
        assert_eq!(inbox[0].from, NodeId(1));
    }

    #[test]
    fn quorum_gates_release_per_round() {
        let mut buf = RoundBuffer::new();
        buf.push(payload_env(3, 0, 0, 1));
        assert!(!buf.ready(3, 1), "payloads alone never release a round");
        buf.push(done_env(3, 0));
        assert!(buf.ready(3, 1));
        assert!(!buf.ready(4, 1), "later rounds untouched");
        assert!(
            buf.ready(7, 0),
            "zero quorum (isolated node) is trivially met"
        );
        assert_eq!(buf.pending_rounds(), 1);
        buf.take(3);
        assert_eq!(buf.pending_rounds(), 0);
    }

    #[test]
    fn future_rounds_buffer_independently() {
        let mut buf = RoundBuffer::new();
        buf.push(done_env(1, 0));
        buf.push(done_env(0, 0));
        buf.push(payload_env(1, 0, 0, 5));
        assert!(buf.ready(0, 1));
        assert!(buf.ready(1, 1));
        assert!(buf.take(0).is_empty());
        let later = buf.take(1);
        assert_eq!(later.len(), 1);
        assert_eq!(later[0].payload.first(), Some(TokenId(5)));
    }

    #[test]
    fn duplicate_sender_seq_pairs_are_discarded_and_counted() {
        let mut buf = RoundBuffer::new();
        buf.push(payload_env(0, 1, 0, 10));
        buf.push(payload_env(0, 1, 0, 10)); // exact duplicate
        buf.push(payload_env(0, 1, 1, 11));
        buf.push(payload_env(0, 2, 0, 20));
        buf.push(payload_env(0, 2, 0, 20)); // duplicated twice more
        buf.push(payload_env(0, 2, 0, 20));
        buf.push(done_env(0, 1));
        buf.push(done_env(0, 2));
        let taken = buf.take_round(0);
        let tokens: Vec<u64> = taken
            .inbox
            .iter()
            .map(|m| m.payload.first().unwrap().0)
            .collect();
        assert_eq!(tokens, vec![10, 11, 20], "first arrival wins, order kept");
        assert_eq!(taken.dups_discarded, 3);
        assert_eq!(buf.dups_discarded(), 3, "buffer accumulates across takes");
        let mut buf2 = RoundBuffer::new();
        buf2.push(payload_env(1, 0, 0, 1));
        buf2.push(done_env(1, 0));
        assert_eq!(buf2.take_round(1).dups_discarded, 0);
    }

    #[test]
    fn take_round_surfaces_rids_and_sorted_marker_acks() {
        let mut buf = RoundBuffer::new();
        let mut env = payload_env(0, 2, 0, 20);
        if let EnvelopeKind::Payload { rid, .. } = &mut env.kind {
            *rid = 7;
        }
        buf.push(env);
        buf.push(Envelope {
            round: 0,
            from: NodeId(2),
            to: NodeId(0),
            seq: u32::MAX,
            kind: EnvelopeKind::RoundDone { ack: 4 },
        });
        buf.push(Envelope {
            round: 0,
            from: NodeId(1),
            to: NodeId(0),
            seq: u32::MAX,
            kind: EnvelopeKind::RoundDone { ack: 9 },
        });
        let taken = buf.take_round(0);
        assert_eq!(taken.rids, vec![7]);
        assert_eq!(taken.acks, vec![(NodeId(1), 9), (NodeId(2), 4)]);
    }

    #[test]
    fn missing_markers_names_the_blocking_senders() {
        let mut buf = RoundBuffer::new();
        let neighbors = [NodeId(1), NodeId(2), NodeId(3)];
        assert_eq!(
            buf.missing_markers(0, &neighbors),
            neighbors.to_vec(),
            "empty slot: everyone is missing"
        );
        buf.push(done_env(0, 2));
        assert_eq!(
            buf.missing_markers(0, &neighbors),
            vec![NodeId(1), NodeId(3)]
        );
        buf.push(done_env(0, 1));
        buf.push(done_env(0, 3));
        assert!(buf.missing_markers(0, &neighbors).is_empty());
    }

    #[test]
    fn channel_transport_delivers_and_notifies() {
        use std::sync::atomic::AtomicUsize;

        let t = ChannelTransport::new(3);
        let hits = Arc::new(AtomicUsize::new(0));
        let hits2 = Arc::clone(&hits);
        t.set_notifier(Arc::new(move |_node| {
            hits2.fetch_add(1, Ordering::Relaxed);
        }));
        t.send(payload_env(0, 1, 0, 9));
        t.send(done_env(0, 1));
        assert_eq!(hits.load(Ordering::Relaxed), 2);
        let mut got = Vec::new();
        assert_eq!(t.drain(0, &mut got), 2);
        assert_eq!(t.drain(0, &mut got), 0, "drain empties the mailbox");
        assert_eq!(got.len(), 2);
        assert_eq!(t.max_depth(), 2, "high-water mark before the drain");
    }
}
