//! The synchronous round engine: message delivery, cost accounting, and the
//! completion oracle.

use crate::fault::FaultPlan;
use crate::protocol::{Destination, Incoming, LocalView, Outgoing, Protocol};
use crate::token::{TokenId, TokenSet};
use hinet_cluster::clustering::{re_elect, GatewayPolicy};
use hinet_cluster::ctvg::HierarchyProvider;
use hinet_cluster::hierarchy::Role;
use hinet_graph::graph::NodeId;
use hinet_rt::obs::{self, FaultKind, Tracer};
use std::fmt;
use std::sync::Arc;

/// Engine configuration — every per-run knob in one place, built with
/// chained constructors:
///
/// ```
/// use hinet_sim::engine::{CostWeights, RunConfig};
///
/// let cfg = RunConfig::new()
///     .max_rounds(500)
///     .record_rounds(true)
///     .cost_weights(CostWeights::default());
/// assert_eq!(cfg.max_rounds, 500);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct RunConfig {
    /// Hard cap on simulated rounds (a safety net; completion normally
    /// stops the run earlier).
    pub max_rounds: usize,
    /// Stop as soon as every node knows every token.
    pub stop_on_completion: bool,
    /// Record a per-round metrics series (costs memory proportional to
    /// rounds; used by the sweep experiments' time-series plots).
    pub record_rounds: bool,
    /// Re-validate the hierarchy against the topology every round and panic
    /// on violation — on by default in tests, useful when driving the
    /// engine from a hand-built provider.
    pub validate_hierarchy: bool,
    /// Record every transmission into [`Metrics::log`] (sender, receiver
    /// set, payload) — costs memory proportional to traffic; used by the
    /// walkthrough example and message-level debugging.
    pub record_messages: bool,
    /// Byte-level cost weights carried into the [`RunReport`] so byte
    /// metrics always use the weights the run was configured with.
    pub cost_weights: CostWeights,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            max_rounds: 100_000,
            stop_on_completion: true,
            record_rounds: false,
            validate_hierarchy: false,
            record_messages: false,
            cost_weights: CostWeights::default(),
        }
    }
}

impl RunConfig {
    /// Alias for [`RunConfig::default`], the builder entry point.
    pub fn new() -> Self {
        RunConfig::default()
    }

    /// Set the hard round cap.
    pub fn max_rounds(mut self, rounds: usize) -> Self {
        self.max_rounds = rounds;
        self
    }

    /// Set whether the run stops at global completion.
    pub fn stop_on_completion(mut self, stop: bool) -> Self {
        self.stop_on_completion = stop;
        self
    }

    /// Enable/disable the per-round metrics series.
    pub fn record_rounds(mut self, record: bool) -> Self {
        self.record_rounds = record;
        self
    }

    /// Enable/disable per-round hierarchy validation.
    pub fn validate_hierarchy(mut self, validate: bool) -> Self {
        self.validate_hierarchy = validate;
        self
    }

    /// Enable/disable the full message log.
    pub fn record_messages(mut self, record: bool) -> Self {
        self.record_messages = record;
        self
    }

    /// Set the byte-cost weights used by [`RunReport::total_bytes`].
    pub fn cost_weights(mut self, weights: CostWeights) -> Self {
        self.cost_weights = weights;
        self
    }
}

/// One recorded transmission (see [`RunConfig::record_messages`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MessageRecord {
    /// Round in which the message was sent.
    pub round: usize,
    /// Sender.
    pub from: NodeId,
    /// `None` for a broadcast, `Some(target)` for a unicast (recorded even
    /// if the unicast was dropped).
    pub to: Option<NodeId>,
    /// Whether a unicast was actually delivered (`true` for broadcasts).
    pub delivered: bool,
    /// The token payload.
    pub tokens: Vec<TokenId>,
}

/// Byte-level cost weights for converting the token/packet counters into
/// radio airtime estimates.
///
/// The paper's metric is "total number of tokens sent", which ignores
/// per-packet framing. Real radios pay a fixed header per transmission, so
/// algorithms that send many tiny packets (one token per round) and
/// algorithms that send few large ones (whole `TA` at once) differ more at
/// the byte level than at the token level. The experiment reports expose
/// both.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CostWeights {
    /// Payload bytes per token.
    pub token_bytes: u64,
    /// Framing bytes per packet (MAC/PHY header, addresses, checksums).
    pub packet_header_bytes: u64,
}

impl Default for CostWeights {
    /// IEEE 802.15.4-flavoured defaults: 16-byte tokens, 24-byte framing.
    fn default() -> Self {
        CostWeights {
            token_bytes: 16,
            packet_header_bytes: 24,
        }
    }
}

/// Costs of a single round.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RoundMetrics {
    /// Tokens sent this round (paper's communication metric).
    pub tokens_sent: u64,
    /// Packets (messages) sent this round.
    pub packets_sent: u64,
    /// Nodes that already knew every token at the *start* of the round.
    pub informed_nodes: usize,
}

/// Aggregate run costs.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    /// Total tokens sent — the paper's "communication cost (total size of
    /// packets)".
    pub tokens_sent: u64,
    /// Total packets sent.
    pub packets_sent: u64,
    /// Tokens sent broken down by sender role `[head, gateway, member]`.
    pub tokens_by_role: [u64; 3],
    /// Unicasts whose target was not a neighbor this round (dropped; still
    /// counted as sent — the radio transmitted).
    pub dropped_unicasts: u64,
    /// Deliveries dropped by the fault plane (loss + partitions). The
    /// sender still pays the send cost — the radio transmitted.
    pub faults_injected: u64,
    /// Node crashes injected by the fault plane.
    pub crashes: u64,
    /// Node recoveries (restarts after a crash window).
    pub recoveries: u64,
    /// Messages marked as recovery retransmissions by the protocols.
    pub retransmits: u64,
    /// Optional per-round series (see [`RunConfig::record_rounds`]).
    pub rounds: Vec<RoundMetrics>,
    /// Optional full message log (see [`RunConfig::record_messages`]).
    pub log: Vec<MessageRecord>,
}

impl Metrics {
    /// Total bytes on air under the given weights:
    /// `tokens·token_bytes + packets·header_bytes`.
    pub fn total_bytes(&self, w: CostWeights) -> u64 {
        self.tokens_sent * w.token_bytes + self.packets_sent * w.packet_header_bytes
    }
}

fn role_slot(role: Role) -> usize {
    match role {
        Role::Head => 0,
        Role::Gateway => 1,
        Role::Member => 2,
    }
}

fn obs_role(role: Role) -> obs::Role {
    match role {
        Role::Head => obs::Role::Head,
        Role::Gateway => obs::Role::Gateway,
        Role::Member => obs::Role::Member,
    }
}

/// How a run ended — the structured replacement for a bare "completed"
/// bool, so degraded runs report *how* they failed instead of just timing
/// out.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Every node learned every token.
    Completed {
        /// 1-based count of rounds needed (0 when already complete).
        round: usize,
    },
    /// The run ended incomplete with no fault ever injected: the protocol
    /// itself stalled (quiesced with tokens undelivered) or ran out of
    /// round budget.
    Stalled {
        /// Distinct tokens still unknown to at least one node.
        missing_tokens: usize,
        /// `true` when the [`RunConfig::max_rounds`] cap ended the run;
        /// `false` when every protocol went quiescent first (stalled
        /// forever — more budget would not have helped).
        budget_exhausted: bool,
    },
    /// The run ended incomplete after the fault plane violated the paper's
    /// assumptions — the failure is attributable to injected faults, not
    /// to the protocol.
    AssumptionViolated {
        /// `(first, last)` round in which a fault fired.
        window: (u64, u64),
        /// Which assumption broke: `1` = per-round delivery (message loss
        /// only), `2` = backbone stability (crashes or partitions fired).
        def: u8,
    },
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Outcome::Completed { round } => write!(f, "completed in {round} rounds"),
            Outcome::Stalled {
                missing_tokens,
                budget_exhausted,
            } => write!(
                f,
                "stalled ({missing_tokens} tokens undelivered, {})",
                if *budget_exhausted {
                    "budget exhausted"
                } else {
                    "quiescent"
                }
            ),
            Outcome::AssumptionViolated { window, def } => write!(
                f,
                "assumption violated (def {def}, faults in rounds {}..={})",
                window.0, window.1
            ),
        }
    }
}

/// Outcome of a run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Rounds actually executed.
    pub rounds_executed: usize,
    /// First round index after which *every* node knew every token
    /// (1-based count of rounds needed), or `None` if the cap was hit
    /// first. The paper's "spending time (rounds)".
    pub completion_round: Option<usize>,
    /// Aggregate costs.
    pub metrics: Metrics,
    /// Number of tokens in the universe (`k`).
    pub k: usize,
    /// The byte-cost weights the run was configured with (see
    /// [`RunConfig::cost_weights`]).
    pub cost_weights: CostWeights,
    /// How the run ended (see [`Outcome`]).
    pub outcome: Outcome,
}

impl RunReport {
    /// Whether dissemination completed. Equivalent to
    /// `matches!(self.outcome, Outcome::Completed { .. })`.
    pub fn completed(&self) -> bool {
        self.completion_round.is_some()
    }

    /// Total bytes on air under the run's configured [`CostWeights`].
    pub fn total_bytes(&self) -> u64 {
        self.metrics.total_bytes(self.cost_weights)
    }
}

/// The synchronous round engine.
///
/// Drives one [`Protocol`] instance per node over the `(graph, hierarchy)`
/// stream of a [`HierarchyProvider`]:
///
/// 1. every node's `send` runs against the round's [`LocalView`];
/// 2. broadcasts deliver to all current neighbors, unicasts to the target
///    iff it is a current neighbor (otherwise dropped but still paid for);
/// 3. every node's `receive` runs;
/// 4. the oracle checks global completion.
///
/// Nodes are processed in id order throughout, so runs are deterministic.
pub struct Engine {
    cfg: RunConfig,
}

impl Engine {
    /// Engine with the given config.
    pub fn new(cfg: RunConfig) -> Self {
        Engine { cfg }
    }

    /// Engine with [`RunConfig::default`].
    pub fn with_defaults() -> Self {
        Engine::new(RunConfig::default())
    }

    /// Run `protocols` (one per node, same length as `provider.n()`) with
    /// the given initial token assignment. The token universe is the union
    /// of all initial tokens.
    ///
    /// # Panics
    /// Panics if `protocols`/`assignment` lengths disagree with the node
    /// count, or (with `validate_hierarchy`) on an invalid hierarchy.
    pub fn run<P: Protocol>(
        &self,
        provider: &mut dyn HierarchyProvider,
        protocols: &mut [P],
        assignment: &[Vec<TokenId>],
    ) -> RunReport {
        self.run_traced(provider, protocols, assignment, &mut Tracer::disabled())
    }

    /// Like [`Engine::run`], but emits structured [`hinet_rt::obs`] events
    /// into `tracer` as the run executes: a [`obs::Event::RoundStart`] per
    /// round, an [`obs::Event::TokenPush`] per unicast and an
    /// [`obs::Event::HeadBroadcast`] per broadcast (with byte costs from the
    /// configured [`CostWeights`]), an [`obs::Event::Reaffiliation`]
    /// whenever a node's head changes between rounds, and a final
    /// [`obs::Event::RunEnd`]. With a disabled tracer every emission site
    /// reduces to one branch, so `run` pays no measurable overhead.
    pub fn run_traced<P: Protocol>(
        &self,
        provider: &mut dyn HierarchyProvider,
        protocols: &mut [P],
        assignment: &[Vec<TokenId>],
        tracer: &mut Tracer,
    ) -> RunReport {
        self.run_faulted(
            provider,
            protocols,
            assignment,
            &FaultPlan::none(),
            &mut |_| unreachable!("a trivial fault plan never restarts a node"),
            tracer,
        )
    }

    /// Like [`Engine::run_traced`], but with a [`FaultPlan`] injected into
    /// the round loop:
    ///
    /// * **crashes** — at the start of a round, each scheduled or
    ///   hazard-selected node is replaced with a fresh protocol instance
    ///   from `restart` (its volatile state is lost; it keeps its learned
    ///   tokens only under [`FaultPlan::durable_tokens`], its initial
    ///   tokens otherwise) and stays silent — no send, no receive — for
    ///   [`FaultPlan::down_rounds`] rounds;
    /// * **re-election** — while a crashed node heads a cluster, the
    ///   round's hierarchy is repaired with
    ///   [`hinet_cluster::clustering::re_elect`] so live members re-home to
    ///   live heads (traced as re-affiliations);
    /// * **losses/partitions** — each delivery (per receiver for
    ///   broadcasts) is dropped per [`FaultPlan::drops_message`]; the
    ///   sender still pays the send cost;
    /// * **accounting** — every injected fault is counted in
    ///   [`Metrics`]/[`hinet_rt::obs::Counters`] and traced as
    ///   `fault_injected`/`crash`/`recover` events; protocol messages
    ///   marked [`crate::protocol::Outgoing::retransmit`] are counted and
    ///   traced as `retransmit`.
    ///
    /// The report's [`RunReport::outcome`] distinguishes completion,
    /// fault-free stalls and fault-attributed failures. With a
    /// [trivial](FaultPlan::is_trivial) plan this is *bit-identical* to
    /// [`Engine::run_traced`] — same protocol evolution, same trace bytes —
    /// and `restart` is never called.
    pub fn run_faulted<P: Protocol>(
        &self,
        provider: &mut dyn HierarchyProvider,
        protocols: &mut [P],
        assignment: &[Vec<TokenId>],
        faults: &FaultPlan,
        restart: &mut dyn FnMut(usize) -> P,
        tracer: &mut Tracer,
    ) -> RunReport {
        let n = provider.n();
        assert_eq!(protocols.len(), n, "one protocol per node");
        assert_eq!(assignment.len(), n, "one initial token list per node");

        let universe: TokenSet = assignment.iter().flatten().copied().collect();
        let k = universe.len();
        if tracer.enabled() {
            // Stable stamps so two traces can be aligned (or refused) by the
            // diff engine: byte counters are only comparable under the same
            // cost weights.
            let w = self.cfg.cost_weights;
            tracer.meta("token_bytes", w.token_bytes.to_string());
            tracer.meta("packet_header_bytes", w.packet_header_bytes.to_string());
        }
        for (i, p) in protocols.iter_mut().enumerate() {
            p.on_start(NodeId::from_index(i), &assignment[i]);
        }

        let mut metrics = Metrics::default();
        let mut completion_round = None;
        let mut rounds_executed = 0;
        let mut inboxes: Vec<Vec<Incoming>> = vec![Vec::new(); n];

        // Previous round's head per node, for re-affiliation events.
        let mut prev_heads: Vec<Option<NodeId>> = Vec::new();

        // Fault-plane state. A trivial plan skips every fault branch, so
        // the clean path stays bit-identical to the pre-fault engine.
        let trivial = faults.is_trivial();
        // Node `i` is down (crashed, silent) while `round < down_until[i]`.
        let mut down_until = vec![0usize; n];
        let mut was_down = vec![false; n];
        // `(first, last)` round in which any fault fired.
        let mut fault_window: Option<(u64, u64)> = None;
        // Whether a backbone-level fault (crash or partition) fired, vs
        // message loss only — selects the violated-assumption class.
        let mut backbone_fault = false;
        let mut budget_exhausted = true;

        // Degenerate case: everyone informed before any round.
        if Self::all_informed(protocols, &universe) {
            tracer.run_end(0, true);
            return RunReport {
                rounds_executed: 0,
                completion_round: Some(0),
                metrics,
                k,
                cost_weights: self.cfg.cost_weights,
                outcome: Outcome::Completed { round: 0 },
            };
        }

        for round in 0..self.cfg.max_rounds {
            let graph = provider.graph_at(round);
            let mut hierarchy = provider.hierarchy_at(round);
            if self.cfg.validate_hierarchy {
                hierarchy
                    .validate(&graph)
                    .unwrap_or_else(|e| panic!("round {round}: invalid hierarchy: {e}"));
            }

            tracer.round_start(round as u64);

            if !trivial {
                // Recoveries first: a node whose down window just elapsed
                // rejoins this round (and is immediately re-crashable).
                for i in 0..n {
                    if was_down[i] && round >= down_until[i] {
                        was_down[i] = false;
                        metrics.recoveries += 1;
                        tracer.recover(round as u64, i as u64);
                    }
                }
                for i in 0..n {
                    if round < down_until[i] {
                        continue; // still down; cannot crash again yet
                    }
                    let me = NodeId::from_index(i);
                    if faults.crashes(round, i, hierarchy.is_head(me)) {
                        metrics.crashes += 1;
                        backbone_fault = true;
                        note_fault(&mut fault_window, round as u64);
                        tracer.crash(round as u64, i as u64, faults.durable_tokens);
                        // Volatile protocol state dies with the node; the
                        // tokens it carries survive per the durability flag.
                        let retained: Vec<TokenId> = if faults.durable_tokens {
                            protocols[i].known().iter().copied().collect()
                        } else {
                            assignment[i].clone()
                        };
                        protocols[i] = restart(i);
                        protocols[i].on_start(me, &retained);
                        down_until[i] = round + faults.down_rounds;
                        was_down[i] = true;
                    }
                }
                // While a crashed node heads a cluster, repair the round's
                // hierarchy so live members re-home to live heads.
                let down: Vec<bool> = (0..n).map(|i| round < down_until[i]).collect();
                if (0..n).any(|i| down[i] && hierarchy.is_head(NodeId::from_index(i))) {
                    hierarchy = Arc::new(re_elect(
                        &graph,
                        &hierarchy,
                        &down,
                        GatewayPolicy::default(),
                    ));
                }
            }

            if tracer.enabled() {
                let heads: Vec<Option<NodeId>> = (0..n)
                    .map(|i| hierarchy.head_of(NodeId::from_index(i)))
                    .collect();
                if round > 0 {
                    for (i, (old, new)) in prev_heads.iter().zip(&heads).enumerate() {
                        if old != new {
                            tracer.reaffiliation(
                                round as u64,
                                i as u64,
                                old.map(|h| h.0 as u64),
                                new.map(|h| h.0 as u64),
                            );
                        }
                    }
                }
                prev_heads = heads;
            }

            let informed_at_start = protocols
                .iter()
                .filter(|p| universe.is_subset(p.known()))
                .count();

            let mut round_tokens = 0u64;
            let mut round_packets = 0u64;

            for inbox in inboxes.iter_mut() {
                inbox.clear();
            }

            // Send phase.
            for i in 0..n {
                let me = NodeId::from_index(i);
                if !trivial && round < down_until[i] {
                    continue; // crashed nodes are silent
                }
                if protocols[i].finished() {
                    continue;
                }
                let view = LocalView {
                    me,
                    round,
                    role: hierarchy.role(me),
                    cluster: hierarchy.cluster_of(me),
                    head: hierarchy.head_of(me),
                    parent: hierarchy.parent_of(me),
                    neighbors: graph.neighbors(me),
                };
                let outs: Vec<Outgoing> = protocols[i].send(&view);
                for out in outs {
                    if out.tokens.is_empty() {
                        continue;
                    }
                    let cost = out.tokens.len() as u64;
                    round_tokens += cost;
                    round_packets += 1;
                    metrics.tokens_by_role[role_slot(hierarchy.role(me))] += cost;
                    if tracer.enabled() {
                        let w = self.cfg.cost_weights;
                        let bytes = cost * w.token_bytes + w.packet_header_bytes;
                        let role = obs_role(hierarchy.role(me));
                        let first = out.tokens[0].0;
                        match out.dest {
                            Destination::Broadcast => tracer.head_broadcast(
                                round as u64,
                                me.0 as u64,
                                first,
                                cost,
                                role,
                                bytes,
                            ),
                            Destination::Unicast(v) => tracer.token_push(
                                round as u64,
                                me.0 as u64,
                                first,
                                cost,
                                role,
                                v.0 as u64,
                                bytes,
                            ),
                        }
                    }
                    if out.retransmit {
                        metrics.retransmits += 1;
                        if tracer.enabled() {
                            let dst = match out.dest {
                                Destination::Broadcast => None,
                                Destination::Unicast(v) => Some(v.0 as u64),
                            };
                            tracer.retransmit(round as u64, me.0 as u64, cost, dst);
                        }
                    }
                    match out.dest {
                        Destination::Broadcast => {
                            if self.cfg.record_messages {
                                metrics.log.push(MessageRecord {
                                    round,
                                    from: me,
                                    to: None,
                                    delivered: true,
                                    tokens: out.tokens.clone(),
                                });
                            }
                            for &v in graph.neighbors(me) {
                                if !trivial
                                    && self.faulted_delivery(
                                        faults,
                                        round,
                                        me,
                                        v,
                                        &mut metrics,
                                        &mut fault_window,
                                        &mut backbone_fault,
                                        &down_until,
                                        tracer,
                                    )
                                {
                                    continue;
                                }
                                inboxes[v.index()].push(Incoming {
                                    from: me,
                                    directed: false,
                                    tokens: out.tokens.clone(),
                                });
                            }
                        }
                        Destination::Unicast(v) => {
                            let delivered = graph.has_edge(me, v);
                            if self.cfg.record_messages {
                                metrics.log.push(MessageRecord {
                                    round,
                                    from: me,
                                    to: Some(v),
                                    delivered,
                                    tokens: out.tokens.clone(),
                                });
                            }
                            if delivered {
                                if !trivial
                                    && self.faulted_delivery(
                                        faults,
                                        round,
                                        me,
                                        v,
                                        &mut metrics,
                                        &mut fault_window,
                                        &mut backbone_fault,
                                        &down_until,
                                        tracer,
                                    )
                                {
                                    continue;
                                }
                                inboxes[v.index()].push(Incoming {
                                    from: me,
                                    directed: true,
                                    tokens: out.tokens,
                                });
                            } else {
                                metrics.dropped_unicasts += 1;
                            }
                        }
                    }
                }
            }

            // Receive phase.
            for i in 0..n {
                if !trivial && round < down_until[i] {
                    continue; // deliveries to crashed nodes are lost
                }
                let me = NodeId::from_index(i);
                let view = LocalView {
                    me,
                    round,
                    role: hierarchy.role(me),
                    cluster: hierarchy.cluster_of(me),
                    head: hierarchy.head_of(me),
                    parent: hierarchy.parent_of(me),
                    neighbors: graph.neighbors(me),
                };
                protocols[i].receive(&view, &inboxes[i]);
            }

            metrics.tokens_sent += round_tokens;
            metrics.packets_sent += round_packets;
            if self.cfg.record_rounds {
                metrics.rounds.push(RoundMetrics {
                    tokens_sent: round_tokens,
                    packets_sent: round_packets,
                    informed_nodes: informed_at_start,
                });
            }
            rounds_executed = round + 1;

            if completion_round.is_none() && Self::all_informed(protocols, &universe) {
                completion_round = Some(rounds_executed);
                if self.cfg.stop_on_completion {
                    budget_exhausted = false;
                    break;
                }
            }
            // All protocols locally finished and nothing further can change.
            if protocols.iter().all(|p| p.finished()) {
                budget_exhausted = false;
                break;
            }
        }

        let outcome = match completion_round {
            Some(round) => Outcome::Completed { round },
            None => {
                let missing_tokens = universe
                    .iter()
                    .filter(|t| protocols.iter().any(|p| !p.known().contains(t)))
                    .count();
                match fault_window {
                    Some(window) => Outcome::AssumptionViolated {
                        window,
                        def: if backbone_fault { 2 } else { 1 },
                    },
                    None => Outcome::Stalled {
                        missing_tokens,
                        budget_exhausted,
                    },
                }
            }
        };
        tracer.run_end(rounds_executed as u64, completion_round.is_some());
        RunReport {
            rounds_executed,
            completion_round,
            metrics,
            k,
            cost_weights: self.cfg.cost_weights,
            outcome,
        }
    }

    /// Fault-plane delivery gate: returns `true` when the `from → to`
    /// delivery is lost this round, accounting and tracing the fault.
    /// Deliveries to crashed receivers are lost silently — the crash event
    /// already explains them.
    #[allow(clippy::too_many_arguments)]
    fn faulted_delivery(
        &self,
        faults: &FaultPlan,
        round: usize,
        from: NodeId,
        to: NodeId,
        metrics: &mut Metrics,
        fault_window: &mut Option<(u64, u64)>,
        backbone_fault: &mut bool,
        down_until: &[usize],
        tracer: &mut Tracer,
    ) -> bool {
        if round < down_until[to.index()] {
            return true;
        }
        let kind = if faults.partitioned(round, from.index(), to.index()) {
            FaultKind::Partition
        } else if faults.drops_message(round, from.index(), to.index()) {
            FaultKind::Loss
        } else {
            return false;
        };
        if kind == FaultKind::Partition {
            *backbone_fault = true;
        }
        metrics.faults_injected += 1;
        note_fault(fault_window, round as u64);
        tracer.fault_injected(round as u64, from.0 as u64, Some(to.0 as u64), kind);
        true
    }

    fn all_informed<P: Protocol>(protocols: &[P], universe: &TokenSet) -> bool {
        protocols.iter().all(|p| universe.is_subset(p.known()))
    }
}

/// Widen the `(first, last)` fault window to include `round`.
fn note_fault(window: &mut Option<(u64, u64)>, round: u64) {
    *window = Some(match *window {
        None => (round, round),
        Some((first, _)) => (first, round),
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::round_robin_assignment;
    use hinet_cluster::ctvg::{CtvgTrace, CtvgTraceProvider};
    use hinet_cluster::hierarchy::single_cluster;
    use hinet_graph::trace::TvgTrace;
    use hinet_graph::Graph;
    use std::sync::Arc;

    /// Toy protocol: broadcast entire TA every round (flat flooding).
    struct Flood {
        ta: TokenSet,
    }

    impl Flood {
        fn new() -> Self {
            Flood {
                ta: TokenSet::new(),
            }
        }
    }

    impl Protocol for Flood {
        fn on_start(&mut self, _me: NodeId, initial: &[TokenId]) {
            self.ta.extend(initial.iter().copied());
        }
        fn send(&mut self, _view: &LocalView<'_>) -> Vec<Outgoing> {
            if self.ta.is_empty() {
                vec![]
            } else {
                vec![Outgoing::broadcast_set(&self.ta)]
            }
        }
        fn receive(&mut self, _view: &LocalView<'_>, inbox: &[Incoming]) {
            for m in inbox {
                self.ta.extend(m.tokens.iter().copied());
            }
        }
        fn known(&self) -> &TokenSet {
            &self.ta
        }
    }

    fn star_provider(n: usize, rounds: usize) -> CtvgTraceProvider {
        let g = Arc::new(Graph::star(n));
        let h = Arc::new(single_cluster(n, NodeId(0)));
        let t = TvgTrace::new((0..rounds).map(|_| Arc::clone(&g)).collect());
        CtvgTraceProvider::new(CtvgTrace::new(
            t,
            (0..rounds).map(|_| Arc::clone(&h)).collect(),
        ))
    }

    #[test]
    fn flooding_on_star_completes_in_two_rounds() {
        let mut provider = star_provider(5, 10);
        let mut protocols: Vec<Flood> = (0..5).map(|_| Flood::new()).collect();
        let assignment = round_robin_assignment(5, 5);
        let report = Engine::with_defaults().run(&mut provider, &mut protocols, &assignment);
        // Leaf tokens reach the hub in round 1, hub re-broadcasts in round 2.
        assert_eq!(report.completion_round, Some(2));
        assert!(report.completed());
        assert_eq!(report.k, 5);
    }

    #[test]
    fn token_accounting_counts_payloads_once() {
        let mut provider = star_provider(3, 10);
        let mut protocols: Vec<Flood> = (0..3).map(|_| Flood::new()).collect();
        // One token at the hub: round 1 = hub broadcasts 1 token (leaves have
        // nothing). After round 1 everyone knows it.
        let assignment = vec![vec![TokenId(0)], vec![], vec![]];
        let report = Engine::with_defaults().run(&mut provider, &mut protocols, &assignment);
        assert_eq!(report.completion_round, Some(1));
        // Hub sent 1 token (broadcast counted once despite 2 receivers).
        assert_eq!(report.metrics.tokens_sent, 1);
        assert_eq!(report.metrics.packets_sent, 1);
    }

    #[test]
    fn per_round_series_recorded() {
        let mut provider = star_provider(4, 10);
        let mut protocols: Vec<Flood> = (0..4).map(|_| Flood::new()).collect();
        let assignment = round_robin_assignment(4, 4);
        let cfg = RunConfig::new().record_rounds(true);
        let report = Engine::new(cfg).run(&mut provider, &mut protocols, &assignment);
        assert_eq!(report.metrics.rounds.len(), report.rounds_executed);
        assert!(report.metrics.rounds[0].tokens_sent > 0);
        assert_eq!(report.metrics.rounds[0].informed_nodes, 0);
    }

    #[test]
    fn max_rounds_cap_reported_as_incomplete() {
        // Disconnected graph: token can never cross.
        let g = Arc::new(Graph::from_edges(2, []));
        let h = Arc::new({
            use hinet_cluster::hierarchy::{ClusterId, Hierarchy, Role};
            Hierarchy::new(
                vec![Role::Head, Role::Head],
                vec![Some(ClusterId(NodeId(0))), Some(ClusterId(NodeId(1)))],
            )
        });
        let t = TvgTrace::new(vec![Arc::clone(&g)]);
        let mut provider = CtvgTraceProvider::new(CtvgTrace::new(t, vec![h]));
        let mut protocols: Vec<Flood> = (0..2).map(|_| Flood::new()).collect();
        let assignment = vec![vec![TokenId(0)], vec![]];
        let cfg = RunConfig::new().max_rounds(5);
        let report = Engine::new(cfg).run(&mut provider, &mut protocols, &assignment);
        assert_eq!(report.completion_round, None);
        assert!(!report.completed());
        assert_eq!(report.rounds_executed, 5);
    }

    #[test]
    fn message_log_records_both_kinds() {
        let mut provider = star_provider(3, 5);
        let mut protocols: Vec<Flood> = (0..3).map(|_| Flood::new()).collect();
        let assignment = vec![vec![TokenId(0)], vec![TokenId(1)], vec![]];
        let cfg = RunConfig::new().record_messages(true);
        let report = Engine::new(cfg).run(&mut provider, &mut protocols, &assignment);
        assert!(report.completed());
        assert_eq!(
            report.metrics.log.len() as u64,
            report.metrics.packets_sent,
            "one record per packet"
        );
        let first = &report.metrics.log[0];
        assert_eq!(first.round, 0);
        assert!(first.delivered);
        assert_eq!(first.to, None, "flooding broadcasts");
        let total: usize = report.metrics.log.iter().map(|m| m.tokens.len()).sum();
        assert_eq!(total as u64, report.metrics.tokens_sent);
    }

    #[test]
    fn byte_cost_combines_tokens_and_packets() {
        let m = Metrics {
            tokens_sent: 10,
            packets_sent: 3,
            ..Metrics::default()
        };
        let w = CostWeights {
            token_bytes: 16,
            packet_header_bytes: 24,
        };
        assert_eq!(m.total_bytes(w), 10 * 16 + 3 * 24);
        assert_eq!(Metrics::default().total_bytes(CostWeights::default()), 0);
    }

    #[test]
    fn already_complete_needs_zero_rounds() {
        let mut provider = star_provider(2, 2);
        let mut protocols: Vec<Flood> = (0..2).map(|_| Flood::new()).collect();
        let assignment = vec![vec![TokenId(0)], vec![TokenId(0)]];
        let report = Engine::with_defaults().run(&mut provider, &mut protocols, &assignment);
        assert_eq!(report.completion_round, Some(0));
        assert_eq!(report.metrics.tokens_sent, 0);
    }

    #[test]
    fn dropped_unicast_counted() {
        struct BadUnicast {
            ta: TokenSet,
        }
        impl Protocol for BadUnicast {
            fn on_start(&mut self, _me: NodeId, initial: &[TokenId]) {
                self.ta.extend(initial.iter().copied());
            }
            fn send(&mut self, view: &LocalView<'_>) -> Vec<Outgoing> {
                if view.me == NodeId(1) && !self.ta.is_empty() {
                    // Node 2 is not a neighbor of 1 in a star.
                    vec![Outgoing::unicast_set(NodeId(2), &self.ta)]
                } else {
                    vec![]
                }
            }
            fn receive(&mut self, _view: &LocalView<'_>, inbox: &[Incoming]) {
                for m in inbox {
                    self.ta.extend(m.tokens.iter().copied());
                }
            }
            fn known(&self) -> &TokenSet {
                &self.ta
            }
        }
        let mut provider = star_provider(3, 3);
        let mut protocols: Vec<BadUnicast> = (0..3)
            .map(|_| BadUnicast {
                ta: TokenSet::new(),
            })
            .collect();
        let assignment = vec![vec![], vec![TokenId(0)], vec![]];
        let cfg = RunConfig::new().max_rounds(2);
        let report = Engine::new(cfg).run(&mut provider, &mut protocols, &assignment);
        assert_eq!(report.metrics.dropped_unicasts, 2, "one drop per round");
        assert_eq!(
            report.metrics.tokens_sent, 2,
            "sends are paid even if dropped"
        );
        assert!(!report.completed());
    }

    #[test]
    fn traced_run_matches_report_and_untraced_run() {
        use hinet_rt::obs::{Event, ObsConfig, TraceSummary, Tracer};

        let assignment = round_robin_assignment(5, 5);

        let mut provider = star_provider(5, 10);
        let mut protocols: Vec<Flood> = (0..5).map(|_| Flood::new()).collect();
        let baseline = Engine::with_defaults().run(&mut provider, &mut protocols, &assignment);

        let mut provider = star_provider(5, 10);
        let mut protocols: Vec<Flood> = (0..5).map(|_| Flood::new()).collect();
        let mut tracer = Tracer::new(ObsConfig::full());
        let report = Engine::with_defaults().run_traced(
            &mut provider,
            &mut protocols,
            &assignment,
            &mut tracer,
        );

        // Tracing must not perturb the run.
        assert_eq!(report.completion_round, baseline.completion_round);
        assert_eq!(report.metrics.tokens_sent, baseline.metrics.tokens_sent);

        // Tracer counters agree with the report's own accounting.
        let c = tracer.counters();
        assert_eq!(c.rounds, report.rounds_executed as u64);
        assert_eq!(c.tokens_sent, report.metrics.tokens_sent);
        assert_eq!(c.packets_sent, report.metrics.packets_sent);
        assert_eq!(c.tokens_by_role, report.metrics.tokens_by_role);
        assert_eq!(c.bytes_sent, report.total_bytes());

        let summary = TraceSummary::from_tracer(&tracer);
        assert_eq!(summary.completed, Some(true));
        let starts = tracer
            .events()
            .filter(|e| e.event == Event::RoundStart)
            .count();
        assert_eq!(starts, report.rounds_executed);
    }

    #[test]
    fn finished_protocols_stop_the_run() {
        struct Mute {
            ta: TokenSet,
        }
        impl Protocol for Mute {
            fn on_start(&mut self, _me: NodeId, initial: &[TokenId]) {
                self.ta.extend(initial.iter().copied());
            }
            fn send(&mut self, _view: &LocalView<'_>) -> Vec<Outgoing> {
                vec![]
            }
            fn receive(&mut self, _view: &LocalView<'_>, _inbox: &[Incoming]) {}
            fn known(&self) -> &TokenSet {
                &self.ta
            }
            fn finished(&self) -> bool {
                true
            }
        }
        let mut provider = star_provider(3, 100);
        let mut protocols: Vec<Mute> = (0..3)
            .map(|_| Mute {
                ta: TokenSet::new(),
            })
            .collect();
        let assignment = vec![vec![TokenId(0)], vec![], vec![]];
        let report = Engine::with_defaults().run(&mut provider, &mut protocols, &assignment);
        assert_eq!(report.rounds_executed, 1, "all finished after first round");
        assert!(!report.completed());
    }

    #[test]
    fn outcome_reports_completion_and_stall() {
        let mut provider = star_provider(5, 10);
        let mut protocols: Vec<Flood> = (0..5).map(|_| Flood::new()).collect();
        let assignment = round_robin_assignment(5, 5);
        let report = Engine::with_defaults().run(&mut provider, &mut protocols, &assignment);
        assert_eq!(report.outcome, Outcome::Completed { round: 2 });

        // Disconnected pair: the token never crosses, no faults involved.
        let g = Arc::new(Graph::from_edges(2, []));
        let h = Arc::new({
            use hinet_cluster::hierarchy::{ClusterId, Hierarchy, Role};
            Hierarchy::new(
                vec![Role::Head, Role::Head],
                vec![Some(ClusterId(NodeId(0))), Some(ClusterId(NodeId(1)))],
            )
        });
        let t = TvgTrace::new(vec![Arc::clone(&g)]);
        let mut provider = CtvgTraceProvider::new(CtvgTrace::new(t, vec![h]));
        let mut protocols: Vec<Flood> = (0..2).map(|_| Flood::new()).collect();
        let assignment = vec![vec![TokenId(0)], vec![]];
        let cfg = RunConfig::new().max_rounds(5);
        let report = Engine::new(cfg).run(&mut provider, &mut protocols, &assignment);
        assert_eq!(
            report.outcome,
            Outcome::Stalled {
                missing_tokens: 1,
                budget_exhausted: true
            }
        );
        assert_eq!(
            report.outcome.to_string(),
            "stalled (1 tokens undelivered, budget exhausted)"
        );
    }

    #[test]
    fn total_loss_blocks_dissemination_and_violates_assumption() {
        use crate::fault::FaultPlan;

        let mut provider = star_provider(3, 4);
        let mut protocols: Vec<Flood> = (0..3).map(|_| Flood::new()).collect();
        let assignment = vec![vec![TokenId(0)], vec![], vec![]];
        let cfg = RunConfig::new().max_rounds(4);
        let faults = FaultPlan::new(9).with_loss_ppm(1_000_000);
        let report = Engine::new(cfg).run_faulted(
            &mut provider,
            &mut protocols,
            &assignment,
            &faults,
            &mut |_| Flood::new(),
            &mut Tracer::disabled(),
        );
        assert!(!report.completed());
        assert!(report.metrics.faults_injected > 0);
        assert_eq!(
            report.outcome,
            Outcome::AssumptionViolated {
                window: (0, 3),
                def: 1
            },
            "pure message loss is a Definition-1 (per-round delivery) violation"
        );
    }

    #[test]
    fn scheduled_crash_counts_and_recovers() {
        use crate::fault::FaultPlan;

        let mut provider = star_provider(3, 20);
        let mut protocols: Vec<Flood> = (0..3).map(|_| Flood::new()).collect();
        let assignment = vec![vec![], vec![TokenId(0)], vec![]];
        // Crash the hub (the head) in round 1 for one round.
        let faults = FaultPlan::new(0).with_crash_at(1, 0).with_down_rounds(1);
        let report = Engine::with_defaults().run_faulted(
            &mut provider,
            &mut protocols,
            &assignment,
            &faults,
            &mut |_| Flood::new(),
            &mut Tracer::disabled(),
        );
        assert_eq!(report.metrics.crashes, 1);
        assert_eq!(report.metrics.recoveries, 1);
        assert!(report.completed(), "the run heals after the hub restarts");
        assert!(matches!(report.outcome, Outcome::Completed { .. }));
    }

    #[test]
    fn durable_tokens_survive_a_crash_volatile_ones_do_not() {
        use crate::fault::FaultPlan;

        let run = |durable: bool| {
            let mut provider = star_provider(3, 20);
            let mut protocols: Vec<Flood> = (0..3).map(|_| Flood::new()).collect();
            let assignment = vec![vec![], vec![TokenId(0)], vec![]];
            let mut faults = FaultPlan::new(0).with_crash_at(1, 0).with_down_rounds(1);
            if durable {
                faults = faults.with_durable_tokens(true);
            }
            Engine::with_defaults()
                .run_faulted(
                    &mut provider,
                    &mut protocols,
                    &assignment,
                    &faults,
                    &mut |_| Flood::new(),
                    &mut Tracer::disabled(),
                )
                .completion_round
                .unwrap()
        };
        // The hub learns the token in round 0 and crashes in round 1. With
        // durable storage it re-broadcasts right after recovery; without, it
        // must first re-learn the token from the leaf.
        assert!(run(true) < run(false));
    }

    #[test]
    fn faulted_runs_replay_exactly() {
        use crate::fault::FaultPlan;

        let run = || {
            let mut provider = star_provider(4, 30);
            let mut protocols: Vec<Flood> = (0..4).map(|_| Flood::new()).collect();
            let assignment = round_robin_assignment(4, 4);
            let faults = FaultPlan::new(42).with_loss_ppm(300_000);
            Engine::with_defaults().run_faulted(
                &mut provider,
                &mut protocols,
                &assignment,
                &faults,
                &mut |_| Flood::new(),
                &mut Tracer::disabled(),
            )
        };
        let (a, b) = (run(), run());
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.metrics.faults_injected, b.metrics.faults_injected);
        assert_eq!(a.metrics.tokens_sent, b.metrics.tokens_sent);
        assert!(a.metrics.faults_injected > 0, "30% loss must bite");
    }

    #[test]
    fn trivial_plan_is_byte_identical_to_plain_tracing() {
        use crate::fault::FaultPlan;
        use hinet_rt::obs::ObsConfig;

        let assignment = round_robin_assignment(5, 5);
        let mut provider = star_provider(5, 10);
        let mut protocols: Vec<Flood> = (0..5).map(|_| Flood::new()).collect();
        let mut plain = Tracer::new(ObsConfig::full());
        Engine::with_defaults().run_traced(&mut provider, &mut protocols, &assignment, &mut plain);

        let mut provider = star_provider(5, 10);
        let mut protocols: Vec<Flood> = (0..5).map(|_| Flood::new()).collect();
        let mut faulted = Tracer::new(ObsConfig::full());
        Engine::with_defaults().run_faulted(
            &mut provider,
            &mut protocols,
            &assignment,
            &FaultPlan::none(),
            &mut |_| Flood::new(),
            &mut faulted,
        );
        assert_eq!(plain.to_jsonl(), faulted.to_jsonl());
    }

    #[test]
    fn partition_severs_cross_traffic_and_flags_backbone() {
        use crate::fault::{FaultPlan, Partition};

        let mut provider = star_provider(4, 6);
        let mut protocols: Vec<Flood> = (0..4).map(|_| Flood::new()).collect();
        let assignment = round_robin_assignment(4, 4);
        let cfg = RunConfig::new().max_rounds(6);
        // Cut {0,1} from {2,3} for the whole run: leaves 2,3 can never learn
        // token 0 or 1 (and vice versa) because every path crosses the hub cut.
        let faults = FaultPlan::new(1).with_partition(Partition {
            start: 0,
            end: 6,
            cut: 2,
        });
        let report = Engine::new(cfg).run_faulted(
            &mut provider,
            &mut protocols,
            &assignment,
            &faults,
            &mut |_| Flood::new(),
            &mut Tracer::disabled(),
        );
        assert!(!report.completed());
        assert!(report.metrics.faults_injected > 0);
        assert!(
            matches!(report.outcome, Outcome::AssumptionViolated { def: 2, .. }),
            "partitions violate Definition 2 (backbone stability), got {:?}",
            report.outcome
        );
    }
}
