//! The synchronous round engine: message delivery, cost accounting, and the
//! completion oracle.
//!
//! There is exactly **one** way to run the engine: build a [`RunConfig`]
//! (which carries every knob — round budget, fault plan, optional tracer,
//! thread count) and call [`Engine::run`]. A default config reproduces the
//! plain path byte-for-byte; attaching a tracer streams
//! [`hinet_rt::obs`] events; a non-trivial [`FaultPlan`] injects
//! deterministic faults. The former `run`/`run_traced`/`run_faulted`
//! matrix collapsed into this single entry point.
//!
//! # Scale
//!
//! Per-node engine state lives in flat arenas indexed by node id (the
//! private `NodeArenas`), neighborhoods are iterated through a cached
//! [`CsrGraph`] view, and the send/receive phases fan out over
//! [`hinet_rt::pool::map_mut`] when the network is large. Event emission
//! and fault accounting stay on a single sequential pass in node-id order,
//! so traced and faulted runs are **byte-identical regardless of thread
//! count**.

use crate::fault::FaultPlan;
use crate::protocol::{Destination, Incoming, LocalView, Outgoing, Payload, Protocol};
use crate::reliable::{ReceiverLedger, ReliableConfig, SenderWindow};
use crate::token::{TokenId, TokenSet};
use hinet_cluster::clustering::{re_elect, GatewayPolicy};
use hinet_cluster::ctvg::HierarchyProvider;
use hinet_cluster::hierarchy::{Hierarchy, Role};
use hinet_graph::csr::CsrGraph;
use hinet_graph::graph::NodeId;
use hinet_graph::Graph;
use hinet_rt::obs::{self, FaultKind, Tracer};
use hinet_rt::pool;
use std::fmt;
use std::str::FromStr;
use std::sync::Arc;
use std::time::Instant;

/// Node count from which the auto thread policy (`threads = 0`) fans the
/// round phases out over the pool; below it, thread spawn overhead beats
/// the parallel win on every workload we measure.
const PARALLEL_NODE_THRESHOLD: usize = 4096;

/// Which runtime executes the run (see `docs/RUNTIME.md`).
///
/// Both modes run the same protocols against the same round semantics and
/// produce identical dissemination results (completion round, token sets,
/// metrics, trace events); they differ in *how* rounds are driven:
///
/// * [`ExecMode::Lockstep`] — the synchronous reference loop: a global
///   barrier between every round's send and receive phases.
/// * [`ExecMode::Event`] — the event-driven message plane: per-node
///   mailboxes behind a [`crate::transport::Transport`], rounds
///   reassembled by [`crate::transport::RoundBuffer`] quorums, nodes
///   progressing independently on concurrent workers. Adds wall-clock
///   throughput and per-token latency to [`RunReport::wall`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ExecMode {
    /// Synchronous round barrier (the paper's model, and the default).
    #[default]
    Lockstep,
    /// Mailbox/round-reassembly runtime with concurrent per-node progress.
    Event,
}

impl ExecMode {
    /// Canonical flag spelling (`lockstep` / `event`).
    pub fn as_str(self) -> &'static str {
        match self {
            ExecMode::Lockstep => "lockstep",
            ExecMode::Event => "event",
        }
    }
}

impl fmt::Display for ExecMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for ExecMode {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "lockstep" => Ok(ExecMode::Lockstep),
            "event" => Ok(ExecMode::Event),
            other => Err(format!(
                "unknown execution mode '{other}' (expected lockstep|event)"
            )),
        }
    }
}

/// Per-token wall-clock completion latency (event mode only): for each
/// token, the nanoseconds from run start until every node had learned it
/// at least once. The "ever learned" cover is monotone, so volatile
/// crash-forgetting cannot un-complete a token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TokenLatency {
    /// Tokens whose cover reached every node during the run.
    pub covered: usize,
    /// Tokens in the universe (`k`).
    pub total: usize,
    /// Median per-token completion latency in nanoseconds.
    pub p50_ns: u64,
    /// 95th-percentile per-token completion latency in nanoseconds.
    pub p95_ns: u64,
    /// Worst per-token completion latency in nanoseconds.
    pub max_ns: u64,
}

/// Wall-clock metrics for a run, alongside the round counts.
///
/// Lock-step fills the elapsed time and throughput; the event runtime
/// additionally reports per-token latency and its mailbox/reassembly
/// counters. All figures describe the message-plane execution itself —
/// trace replay and serialisation happen after the clock stops.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct WallClock {
    /// Wall-clock nanoseconds the run took.
    pub elapsed_ns: u64,
    /// Tokens sent per wall-clock second (`tokens_sent / elapsed`).
    pub tokens_per_sec: f64,
    /// Per-token completion latency distribution (event mode only).
    pub latency: Option<TokenLatency>,
    /// Times a node's step found its round quorum not yet assembled
    /// (event mode; counted once per blocked `(node, round)`).
    pub reassembly_stalls: u64,
    /// High-water mark of any single mailbox's queued-envelope count
    /// (event mode).
    pub mailbox_depth_max: u64,
}

/// Engine configuration — every per-run knob in one place, built with
/// chained constructors. The config *is* the run request: it carries the
/// round budget, the cost weights, the [`FaultPlan`] and (optionally) a
/// mutably borrowed [`Tracer`], so one [`Engine::run`] call covers plain,
/// traced and faulted execution:
///
/// ```
/// use hinet_sim::engine::{CostWeights, RunConfig};
///
/// let cfg = RunConfig::new()
///     .max_rounds(500)
///     .record_rounds(true)
///     .cost_weights(CostWeights::default());
/// assert_eq!(cfg.max_rounds, 500);
/// assert!(cfg.faults.is_trivial());
/// ```
pub struct RunConfig<'t> {
    /// Hard cap on simulated rounds (a safety net; completion normally
    /// stops the run earlier).
    pub max_rounds: usize,
    /// Stop as soon as every node knows every token.
    pub stop_on_completion: bool,
    /// Record a per-round metrics series (costs memory proportional to
    /// rounds; used by the sweep experiments' time-series plots).
    pub record_rounds: bool,
    /// Re-validate the hierarchy against the topology every round and panic
    /// on violation — on by default in tests, useful when driving the
    /// engine from a hand-built provider.
    pub validate_hierarchy: bool,
    /// Record every transmission into [`Metrics::log`] (sender, receiver
    /// set, payload) — costs memory proportional to traffic; used by the
    /// walkthrough example and message-level debugging. Recording stops
    /// with a loud warning once [`RunConfig::message_log_cap`] records
    /// accumulate (see [`Metrics::log_truncated`]).
    pub record_messages: bool,
    /// Upper bound on [`Metrics::log`] length. Without a cap a large-n
    /// run with `record_messages` silently exhausts memory; at the cap the
    /// engine warns once on stderr and drops further records.
    pub message_log_cap: usize,
    /// Byte-level cost weights carried into the [`RunReport`] so byte
    /// metrics always use the weights the run was configured with.
    pub cost_weights: CostWeights,
    /// Deterministic fault plan. The default ([`FaultPlan::none`]) is
    /// [trivial](FaultPlan::is_trivial): every fault branch is skipped and
    /// the run is bit-identical to one with no plan at all.
    pub faults: FaultPlan,
    /// Build protocols in retransmission-recovery mode. The engine itself
    /// ignores this — it is read by protocol factories
    /// (`hinet_core::runner`) so the whole run request still travels as
    /// one config value.
    pub retransmit: bool,
    /// Enable the protocol-agnostic [`crate::reliable`] ack/timeout/backoff
    /// layer: every payload delivery is tracked per link, unacked envelopes
    /// are retransmitted with exponential backoff, and the receive plane
    /// dedups retransmit duplicates — so any algorithm recovers under loss
    /// and delay without its own ARQ. Only active alongside a non-trivial
    /// [`FaultPlan`]; mutually exclusive with [`RunConfig::retransmit`]
    /// (callers gate the combination — see `Scenario`).
    pub reliable: bool,
    /// Stall-watchdog threshold for [`ExecMode::Event`] runs: when no node
    /// completes a round for roughly this many worker park timeouts, the
    /// driver stops spinning, snapshots per-node diagnostics into
    /// [`RunReport::stall`] and reports [`Outcome::Stalled`]. `0` (default)
    /// disables the watchdog. Lock-step runs ignore it.
    pub stall_rounds: usize,
    /// Worker threads for the per-node round phases. `0` (default) picks
    /// automatically: sequential below a fixed node-count threshold,
    /// all available cores above. Any value yields identical results and
    /// identical trace bytes — parallelism never touches observable order.
    pub threads: usize,
    /// Observability sink. `None` (default) disables tracing at zero cost;
    /// `Some` streams one structured event per round/message/fault.
    pub tracer: Option<&'t mut Tracer>,
    /// Which runtime drives the rounds (see [`ExecMode`]). Both modes
    /// produce identical dissemination results; [`ExecMode::Event`] runs
    /// the mailbox message plane and fills the wall-clock latency metrics.
    pub mode: ExecMode,
    /// Verify the (T, L)-HiNet assumption **online** while the run
    /// executes: `Some((t, l))` feeds every round's *effective* topology
    /// and hierarchy (post crash re-election) through a
    /// [`hinet_cluster::stability::stream::StabilityStream`] with the
    /// connectivity certificate enabled. Window verdicts are emitted as
    /// `stability_window` trace events; an incomplete run whose stream
    /// observed a definition violation reports
    /// [`Outcome::AssumptionViolated`] with the paper definition that
    /// broke and the exact round it broke (instead of the coarse
    /// fault-window heuristic), and the stream summary lands in
    /// [`RunReport::stability`]. Lock-step only: [`ExecMode::Event`] runs
    /// ignore it (callers gate the combination — see `Scenario`).
    pub stability_oracle: Option<(usize, usize)>,
}

impl Default for RunConfig<'_> {
    fn default() -> Self {
        RunConfig {
            max_rounds: 100_000,
            stop_on_completion: true,
            record_rounds: false,
            validate_hierarchy: false,
            record_messages: false,
            message_log_cap: 100_000,
            cost_weights: CostWeights::default(),
            faults: FaultPlan::none(),
            retransmit: false,
            reliable: false,
            stall_rounds: 0,
            threads: 0,
            tracer: None,
            mode: ExecMode::Lockstep,
            stability_oracle: None,
        }
    }
}

impl fmt::Debug for RunConfig<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RunConfig")
            .field("max_rounds", &self.max_rounds)
            .field("stop_on_completion", &self.stop_on_completion)
            .field("record_rounds", &self.record_rounds)
            .field("validate_hierarchy", &self.validate_hierarchy)
            .field("record_messages", &self.record_messages)
            .field("message_log_cap", &self.message_log_cap)
            .field("cost_weights", &self.cost_weights)
            .field("faults", &self.faults)
            .field("retransmit", &self.retransmit)
            .field("reliable", &self.reliable)
            .field("stall_rounds", &self.stall_rounds)
            .field("threads", &self.threads)
            .field("tracer", &self.tracer.as_ref().map(|t| t.enabled()))
            .field("mode", &self.mode)
            .field("stability_oracle", &self.stability_oracle)
            .finish()
    }
}

impl<'t> RunConfig<'t> {
    /// Alias for [`RunConfig::default`], the builder entry point.
    pub fn new() -> RunConfig<'static> {
        RunConfig::default()
    }

    /// Set the hard round cap.
    pub fn max_rounds(mut self, rounds: usize) -> Self {
        self.max_rounds = rounds;
        self
    }

    /// Set whether the run stops at global completion.
    pub fn stop_on_completion(mut self, stop: bool) -> Self {
        self.stop_on_completion = stop;
        self
    }

    /// Enable/disable the per-round metrics series.
    pub fn record_rounds(mut self, record: bool) -> Self {
        self.record_rounds = record;
        self
    }

    /// Enable/disable per-round hierarchy validation.
    pub fn validate_hierarchy(mut self, validate: bool) -> Self {
        self.validate_hierarchy = validate;
        self
    }

    /// Enable/disable the full message log (capped at
    /// [`RunConfig::message_log_cap`]).
    pub fn record_messages(mut self, record: bool) -> Self {
        self.record_messages = record;
        self
    }

    /// Set the message-log record cap.
    pub fn message_log_cap(mut self, cap: usize) -> Self {
        self.message_log_cap = cap;
        self
    }

    /// Set the byte-cost weights used by [`RunReport::total_bytes`].
    pub fn cost_weights(mut self, weights: CostWeights) -> Self {
        self.cost_weights = weights;
        self
    }

    /// Set the fault plan.
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Request retransmission-recovery protocol variants (read by protocol
    /// factories, not by the engine itself).
    pub fn retransmit(mut self, retransmit: bool) -> Self {
        self.retransmit = retransmit;
        self
    }

    /// Enable the generalized ack/timeout/backoff reliability layer (see
    /// [`RunConfig::reliable`]).
    pub fn reliable(mut self, reliable: bool) -> Self {
        self.reliable = reliable;
        self
    }

    /// Set the event-mode stall-watchdog threshold (`0` = disabled, see
    /// [`RunConfig::stall_rounds`]).
    pub fn stall_rounds(mut self, rounds: usize) -> Self {
        self.stall_rounds = rounds;
        self
    }

    /// Set the worker thread count (`0` = automatic).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Select the execution runtime (lock-step barrier or the event-driven
    /// mailbox plane).
    pub fn mode(mut self, mode: ExecMode) -> Self {
        self.mode = mode;
        self
    }

    /// Enable or disable the runtime (T, L)-HiNet oracle (see
    /// [`RunConfig::stability_oracle`]).
    pub fn stability_oracle(mut self, oracle: Option<(usize, usize)>) -> Self {
        self.stability_oracle = oracle;
        self
    }

    /// Attach an observability sink for the run.
    pub fn tracer<'u>(self, tracer: &'u mut Tracer) -> RunConfig<'u>
    where
        't: 'u,
    {
        RunConfig {
            max_rounds: self.max_rounds,
            stop_on_completion: self.stop_on_completion,
            record_rounds: self.record_rounds,
            validate_hierarchy: self.validate_hierarchy,
            record_messages: self.record_messages,
            message_log_cap: self.message_log_cap,
            cost_weights: self.cost_weights,
            faults: self.faults,
            retransmit: self.retransmit,
            reliable: self.reliable,
            stall_rounds: self.stall_rounds,
            threads: self.threads,
            tracer: Some(tracer),
            mode: self.mode,
            stability_oracle: self.stability_oracle,
        }
    }
}

/// One recorded transmission (see [`RunConfig::record_messages`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MessageRecord {
    /// Round in which the message was sent.
    pub round: usize,
    /// Sender.
    pub from: NodeId,
    /// `None` for a broadcast, `Some(target)` for a unicast (recorded even
    /// if the unicast was dropped).
    pub to: Option<NodeId>,
    /// Whether a unicast was actually delivered (`true` for broadcasts).
    pub delivered: bool,
    /// The token payload.
    pub tokens: Vec<TokenId>,
}

/// Byte-level cost weights for converting the token/packet counters into
/// radio airtime estimates.
///
/// The paper's metric is "total number of tokens sent", which ignores
/// per-packet framing. Real radios pay a fixed header per transmission, so
/// algorithms that send many tiny packets (one token per round) and
/// algorithms that send few large ones (whole `TA` at once) differ more at
/// the byte level than at the token level. The experiment reports expose
/// both.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CostWeights {
    /// Payload bytes per token.
    pub token_bytes: u64,
    /// Framing bytes per packet (MAC/PHY header, addresses, checksums).
    pub packet_header_bytes: u64,
}

impl Default for CostWeights {
    /// IEEE 802.15.4-flavoured defaults: 16-byte tokens, 24-byte framing.
    fn default() -> Self {
        CostWeights {
            token_bytes: 16,
            packet_header_bytes: 24,
        }
    }
}

/// Costs of a single round.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RoundMetrics {
    /// Tokens sent this round (paper's communication metric).
    pub tokens_sent: u64,
    /// Packets (messages) sent this round.
    pub packets_sent: u64,
    /// Nodes that already knew every token at the *start* of the round.
    pub informed_nodes: usize,
}

/// Aggregate run costs.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    /// Total tokens sent — the paper's "communication cost (total size of
    /// packets)".
    pub tokens_sent: u64,
    /// Total packets sent.
    pub packets_sent: u64,
    /// Tokens sent broken down by sender role `[head, gateway, member]`.
    pub tokens_by_role: [u64; 3],
    /// Unicasts whose target was not a neighbor this round (dropped; still
    /// counted as sent — the radio transmitted).
    pub dropped_unicasts: u64,
    /// Deliveries dropped by the fault plane (loss + partitions). The
    /// sender still pays the send cost — the radio transmitted.
    pub faults_injected: u64,
    /// Node crashes injected by the fault plane.
    pub crashes: u64,
    /// Node recoveries (restarts after a crash window).
    pub recoveries: u64,
    /// Messages marked as recovery retransmissions by the protocols.
    pub retransmits: u64,
    /// Deliveries held back by the fault plane's delay knob
    /// ([`FaultPlan::delay_of`]) — each counted once at the round the
    /// envelope was held, not when it matures.
    pub delays_injected: u64,
    /// Envelope duplications injected by the fault plane
    /// ([`FaultPlan::duplicates`]). Every injected duplicate is discarded
    /// by the receive plane, so this never inflates token/byte counters.
    pub duplicates_injected: u64,
    /// Duplicate envelopes discarded by the receive plane — injected
    /// duplicates plus reliability-layer retransmits that raced an ack.
    pub dups_discarded: u64,
    /// Retransmissions fired by the [`crate::reliable`] layer's timers
    /// (see [`RunConfig::reliable`]); disjoint from
    /// [`Metrics::retransmits`], which counts protocol-level ARQ.
    pub retransmit_timeouts: u64,
    /// Optional per-round series (see [`RunConfig::record_rounds`]).
    pub rounds: Vec<RoundMetrics>,
    /// Optional full message log (see [`RunConfig::record_messages`]).
    pub log: Vec<MessageRecord>,
    /// Whether [`Metrics::log`] hit [`RunConfig::message_log_cap`] and
    /// later records were dropped.
    pub log_truncated: bool,
}

impl Metrics {
    /// Total bytes on air under the given weights:
    /// `tokens·token_bytes + packets·header_bytes`.
    pub fn total_bytes(&self, w: CostWeights) -> u64 {
        self.tokens_sent * w.token_bytes + self.packets_sent * w.packet_header_bytes
    }
}

pub(crate) fn role_slot(role: Role) -> usize {
    match role {
        Role::Head => 0,
        Role::Gateway => 1,
        Role::Member => 2,
    }
}

pub(crate) fn obs_role(role: Role) -> obs::Role {
    match role {
        Role::Head => obs::Role::Head,
        Role::Gateway => obs::Role::Gateway,
        Role::Member => obs::Role::Member,
    }
}

/// How a run ended — the structured replacement for a bare "completed"
/// bool, so degraded runs report *how* they failed instead of just timing
/// out.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Every node learned every token.
    Completed {
        /// 1-based count of rounds needed (0 when already complete).
        round: usize,
    },
    /// The run ended incomplete with no fault ever injected: the protocol
    /// itself stalled (quiesced with tokens undelivered) or ran out of
    /// round budget.
    Stalled {
        /// Distinct tokens still unknown to at least one node.
        missing_tokens: usize,
        /// `true` when the [`RunConfig::max_rounds`] cap ended the run;
        /// `false` when every protocol went quiescent first (stalled
        /// forever — more budget would not have helped).
        budget_exhausted: bool,
    },
    /// The run ended incomplete after the fault plane violated the paper's
    /// assumptions — the failure is attributable to injected faults, not
    /// to the protocol.
    AssumptionViolated {
        /// `(first, last)` round in which a fault fired — or, when the
        /// runtime oracle attributed the failure
        /// ([`RunConfig::stability_oracle`]), the violating window's first
        /// round and the exact round the definition broke.
        window: (u64, u64),
        /// Which assumption broke. Without the oracle this is the coarse
        /// fault-class heuristic: `1` = per-round delivery (message loss
        /// only), `2` = backbone stability (crashes or partitions fired).
        /// With the oracle it is the smallest violated paper definition
        /// (2 = head set, 4 = hierarchy structure, 5 = head connectivity,
        /// 6 = L-hop bound).
        def: u8,
    },
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Outcome::Completed { round } => write!(f, "completed in {round} rounds"),
            Outcome::Stalled {
                missing_tokens,
                budget_exhausted,
            } => write!(
                f,
                "stalled ({missing_tokens} tokens undelivered, {})",
                if *budget_exhausted {
                    "budget exhausted"
                } else {
                    "quiescent"
                }
            ),
            Outcome::AssumptionViolated { window, def } => write!(
                f,
                "assumption violated (def {def}, faults in rounds {}..={})",
                window.0, window.1
            ),
        }
    }
}

/// Outcome of a run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Rounds actually executed.
    pub rounds_executed: usize,
    /// First round index after which *every* node knew every token
    /// (1-based count of rounds needed), or `None` if the cap was hit
    /// first. The paper's "spending time (rounds)".
    pub completion_round: Option<usize>,
    /// Aggregate costs.
    pub metrics: Metrics,
    /// Number of tokens in the universe (`k`).
    pub k: usize,
    /// The byte-cost weights the run was configured with (see
    /// [`RunConfig::cost_weights`]).
    pub cost_weights: CostWeights,
    /// How the run ended (see [`Outcome`]).
    pub outcome: Outcome,
    /// Wall-clock metrics (throughput always; per-token latency and the
    /// mailbox/reassembly counters in [`ExecMode::Event`] runs).
    pub wall: WallClock,
    /// End-of-stream summary of the runtime (T, L)-HiNet oracle — present
    /// iff the run was configured with [`RunConfig::stability_oracle`]
    /// and executed at least one round.
    pub stability: Option<hinet_cluster::stability::stream::StreamReport>,
    /// Stall-watchdog diagnostics — present iff the event-mode watchdog
    /// ([`RunConfig::stall_rounds`]) halted the run.
    pub stall: Option<StallDiag>,
}

/// Per-node snapshot taken when the stall watchdog halts an event-mode
/// run: where the node's round frontier stopped and what it was waiting
/// for.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodeStall {
    /// The stalled node.
    pub node: NodeId,
    /// The round the node was trying to assemble when the run halted (its
    /// progress frontier).
    pub frontier: usize,
    /// Neighbors whose round marker the node's quorum was still missing at
    /// the frontier round.
    pub missing: Vec<NodeId>,
    /// Age in rounds of the node's oldest unacked reliability-layer
    /// envelope (`None` when the reliable layer is off or everything the
    /// node sent was acked).
    pub oldest_unacked: Option<usize>,
}

/// Structured diagnostics attached to [`RunReport::stall`] when the
/// event-mode watchdog fires ([`Outcome::Stalled`] with no quorum progress
/// for [`RunConfig::stall_rounds`] probe periods).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StallDiag {
    /// One entry per node that had not finished when the watchdog fired,
    /// sorted by node id.
    pub nodes: Vec<NodeStall>,
    /// `(first, last)` round in which any fault fired before the halt, if
    /// one did — attribution context for the stall.
    pub fault_window: Option<(u64, u64)>,
}

impl RunReport {
    /// Whether dissemination completed. Equivalent to
    /// `matches!(self.outcome, Outcome::Completed { .. })`.
    pub fn completed(&self) -> bool {
        self.completion_round.is_some()
    }

    /// Total bytes on air under the run's configured [`CostWeights`].
    pub fn total_bytes(&self) -> u64 {
        self.metrics.total_bytes(self.cost_weights)
    }
}

/// Flat per-node engine state, one arena column per field (SoA layout):
/// everything the round loop touches per node sits in contiguous memory
/// indexed by node id, so the hot phases stream instead of chasing
/// pointers. Protocol-internal state (`TA`/`TS`/`TR`, phase counters) lives
/// in the caller's equally flat `Vec<P>`.
struct NodeArenas {
    /// Node `i` is down (crashed, silent) while `round < down_until[i]`.
    down_until: Vec<usize>,
    /// Whether node `i` is inside a crash window (for recovery events).
    was_down: Vec<bool>,
    /// Whether node `i` currently knows the whole universe — the
    /// incremental completion oracle. Maintained at receive/restart time so
    /// the engine never rescans all n nodes per round.
    informed: Vec<bool>,
    /// Previous round's head per node, for re-affiliation events.
    prev_heads: Vec<Option<NodeId>>,
}

impl NodeArenas {
    fn new(n: usize) -> Self {
        NodeArenas {
            down_until: vec![0; n],
            was_down: vec![false; n],
            informed: vec![false; n],
            prev_heads: Vec::new(),
        }
    }

    #[inline]
    fn is_down(&self, round: usize, i: usize) -> bool {
        round < self.down_until[i]
    }
}

/// The synchronous round engine.
///
/// Drives one [`Protocol`] instance per node over the `(graph, hierarchy)`
/// stream of a [`HierarchyProvider`]:
///
/// 1. every node's `send` runs against the round's [`LocalView`];
/// 2. broadcasts deliver to all current neighbors, unicasts to the target
///    iff it is a current neighbor (otherwise dropped but still paid for);
/// 3. every node's `receive` runs;
/// 4. the oracle checks global completion.
///
/// Observable behaviour (metrics, trace bytes, protocol evolution) is
/// deterministic and independent of [`RunConfig::threads`]: the parallel
/// phases only touch per-node state, and all accounting happens on a
/// sequential pass in node-id order.
pub struct Engine<'t> {
    cfg: RunConfig<'t>,
}

impl<'t> Engine<'t> {
    /// Engine with the given config.
    pub fn new(cfg: RunConfig<'t>) -> Self {
        Engine { cfg }
    }

    /// Engine with [`RunConfig::default`].
    pub fn with_defaults() -> Engine<'static> {
        Engine::new(RunConfig::default())
    }

    /// Run `protocols` (one per node, same length as `provider.n()`) with
    /// the given initial token assignment. The token universe is the union
    /// of all initial tokens.
    ///
    /// This is the engine's **only** entry point; the config decides
    /// whether the run is plain, traced ([`RunConfig::tracer`]) and/or
    /// faulted ([`RunConfig::faults`]):
    ///
    /// * **crashes** — at the start of a round, each scheduled or
    ///   hazard-selected node is reset through [`Protocol::on_restart`]
    ///   (its volatile state is lost; it keeps its learned tokens only
    ///   under [`FaultPlan::durable_tokens`], its initial tokens
    ///   otherwise) and stays silent — no send, no receive — for
    ///   [`FaultPlan::down_rounds`] rounds;
    /// * **re-election** — while a crashed node heads a cluster, the
    ///   round's hierarchy is repaired with
    ///   [`hinet_cluster::clustering::re_elect`] so live members re-home to
    ///   live heads (traced as re-affiliations);
    /// * **losses/partitions** — each delivery (per receiver for
    ///   broadcasts) is dropped per [`FaultPlan::drops_message`]; the
    ///   sender still pays the send cost;
    /// * **tracing** — one [`obs::Event::RoundStart`] per round, an
    ///   [`obs::Event::TokenPush`] per unicast and an
    ///   [`obs::Event::HeadBroadcast`] per broadcast (with byte costs from
    ///   the configured [`CostWeights`]), an [`obs::Event::Reaffiliation`]
    ///   whenever a node's head changes between rounds, fault/crash/recover
    ///   events as they fire, and a final [`obs::Event::RunEnd`].
    ///
    /// A [trivial](FaultPlan::is_trivial) plan skips every fault branch and
    /// never calls `on_restart`; together with `tracer: None` the run is
    /// bit-identical to the historical plain path.
    ///
    /// # Panics
    /// Panics if `protocols`/`assignment` lengths disagree with the node
    /// count, or (with `validate_hierarchy`) on an invalid hierarchy.
    pub fn run<P: Protocol + Send>(
        self,
        provider: &mut (dyn HierarchyProvider + Send),
        protocols: &mut [P],
        assignment: &[Vec<TokenId>],
    ) -> RunReport {
        let mut cfg = self.cfg;
        if cfg.mode == ExecMode::Event {
            return crate::event::run(cfg, provider, protocols, assignment);
        }
        let start = Instant::now();
        let mut disabled = Tracer::disabled();
        let tracer: &mut Tracer = match cfg.tracer.take() {
            Some(t) => t,
            None => &mut disabled,
        };
        let faults = cfg.faults.clone();

        let n = provider.n();
        assert_eq!(protocols.len(), n, "one protocol per node");
        assert_eq!(assignment.len(), n, "one initial token list per node");
        let threads = resolve_threads(cfg.threads, n);

        let universe: TokenSet = assignment.iter().flatten().copied().collect();
        let k = universe.len();
        if tracer.enabled() {
            // Stable stamps so two traces can be aligned (or refused) by the
            // diff engine: byte counters are only comparable under the same
            // cost weights.
            let w = cfg.cost_weights;
            tracer.meta("token_bytes", w.token_bytes.to_string());
            tracer.meta("packet_header_bytes", w.packet_header_bytes.to_string());
        }
        for (i, p) in protocols.iter_mut().enumerate() {
            p.on_start(NodeId::from_index(i), &assignment[i]);
        }

        let mut metrics = Metrics::default();
        let mut completion_round = None;
        let mut rounds_executed = 0;
        let mut inboxes: Vec<Vec<Incoming>> = vec![Vec::new(); n];

        let mut arenas = NodeArenas::new(n);
        let mut informed_count = 0usize;
        for (i, p) in protocols.iter().enumerate() {
            let inf = universe.is_subset(p.known());
            arenas.informed[i] = inf;
            informed_count += usize::from(inf);
        }

        // Fault-plane state. A trivial plan skips every fault branch, so
        // the clean path stays bit-identical to the pre-fault engine.
        let trivial = faults.is_trivial();
        // `(first, last)` round in which any fault fired.
        let mut fault_window: Option<(u64, u64)> = None;
        // Whether a backbone-level fault (crash or partition) fired, vs
        // message loss only — selects the violated-assumption class.
        let mut backbone_fault = false;
        let mut budget_exhausted = true;

        // Cached CSR view of the round topology, rebuilt only when the
        // provider hands out a different graph (static providers share one
        // `Arc` across rounds, so the flat view is built once).
        let mut csr_cache: Option<(Arc<Graph>, CsrGraph)> = None;

        // Degenerate case: everyone informed before any round.
        if informed_count == n {
            tracer.run_end(0, true);
            return RunReport {
                rounds_executed: 0,
                completion_round: Some(0),
                metrics,
                k,
                cost_weights: cfg.cost_weights,
                outcome: Outcome::Completed { round: 0 },
                wall: lockstep_wall(start, 0),
                stability: None,
                stall: None,
            };
        }
        // Runtime (T, L)-HiNet oracle: certificate mode pins violations to
        // the exact round the assumption broke.
        let mut oracle = cfg.stability_oracle.map(|(t, l)| {
            hinet_cluster::stability::stream::StabilityStream::new(t, l).with_certificate()
        });

        // Adversarial delivery plane (lock-step side): envelopes held back
        // by the delay knob mature into the receiver's inbox at a later
        // round (`(due_round, rid, message)` per receiver), and the optional
        // reliability layer keeps one sender window plus one receiver
        // ledger per node so backoff timers re-send whatever loss or delay
        // swallowed. All of this state exists only for non-trivial plans —
        // the clean path allocates nothing and stays byte-identical.
        let mut delayed: Vec<Vec<(usize, u64, Incoming)>> = if !trivial {
            vec![Vec::new(); n]
        } else {
            Vec::new()
        };
        let mut plane: Option<(Vec<SenderWindow<(Payload, bool)>>, Vec<ReceiverLedger>)> =
            (cfg.reliable && !trivial).then(|| {
                let senders = (0..n)
                    .map(|i| {
                        // Per-node jitter seed, derived from the fault seed
                        // so `--fault-seed` replays the timers too.
                        let seed = faults.seed ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                        SenderWindow::new(seed, ReliableConfig::default())
                    })
                    .collect();
                let receivers = (0..n).map(|_| ReceiverLedger::new()).collect();
                (senders, receivers)
            });

        let mut warned_log_cap = false;
        for round in 0..cfg.max_rounds {
            let graph = provider.graph_at(round);
            let mut hierarchy = provider.hierarchy_at(round);
            if cfg.validate_hierarchy {
                hierarchy
                    .validate(&graph)
                    .unwrap_or_else(|e| panic!("round {round}: invalid hierarchy: {e}"));
            }
            let rebuild = csr_cache
                .as_ref()
                .is_none_or(|(src, _)| !Arc::ptr_eq(src, &graph));
            if rebuild {
                csr_cache = Some((Arc::clone(&graph), CsrGraph::from(&*graph)));
            }
            let csr = &csr_cache.as_ref().expect("csr cache primed").1;

            tracer.round_start(round as u64);

            if !trivial {
                // Recoveries first: a node whose down window just elapsed
                // rejoins this round (and is immediately re-crashable).
                for i in 0..n {
                    if arenas.was_down[i] && round >= arenas.down_until[i] {
                        arenas.was_down[i] = false;
                        metrics.recoveries += 1;
                        tracer.recover(round as u64, i as u64);
                    }
                }
                for i in 0..n {
                    if arenas.is_down(round, i) {
                        continue; // still down; cannot crash again yet
                    }
                    let me = NodeId::from_index(i);
                    if faults.crashes(round, i, hierarchy.is_head(me)) {
                        metrics.crashes += 1;
                        backbone_fault = true;
                        note_fault(&mut fault_window, round as u64);
                        tracer.crash(round as u64, i as u64, faults.durable_tokens);
                        // Volatile protocol state dies with the node; the
                        // tokens it carries survive per the durability flag.
                        let retained: Vec<TokenId> = if faults.durable_tokens {
                            protocols[i].known().iter().collect()
                        } else {
                            assignment[i].clone()
                        };
                        protocols[i].on_restart(me, &retained);
                        arenas.down_until[i] = round + faults.down_rounds;
                        arenas.was_down[i] = true;
                        // A volatile restart can forget tokens: re-derive the
                        // node's completion-oracle flag.
                        let inf = universe.is_subset(protocols[i].known());
                        if inf != arenas.informed[i] {
                            arenas.informed[i] = inf;
                            if inf {
                                informed_count += 1;
                            } else {
                                informed_count -= 1;
                            }
                        }
                    }
                }
                // While a crashed node heads a cluster, repair the round's
                // hierarchy so live members re-home to live heads.
                let down: Vec<bool> = (0..n).map(|i| arenas.is_down(round, i)).collect();
                if (0..n).any(|i| down[i] && hierarchy.is_head(NodeId::from_index(i))) {
                    hierarchy = Arc::new(re_elect(
                        &graph,
                        &hierarchy,
                        &down,
                        GatewayPolicy::default(),
                    ));
                }
            }

            if tracer.enabled() {
                let heads: Vec<Option<NodeId>> = (0..n)
                    .map(|i| hierarchy.head_of(NodeId::from_index(i)))
                    .collect();
                if round > 0 {
                    for (i, (old, new)) in arenas.prev_heads.iter().zip(&heads).enumerate() {
                        if old != new {
                            tracer.reaffiliation(
                                round as u64,
                                i as u64,
                                old.map(|h| h.0 as u64),
                                new.map(|h| h.0 as u64),
                            );
                        }
                    }
                }
                arenas.prev_heads = heads;
            }

            // The oracle sees the round exactly as the protocols do: the
            // effective hierarchy, after any crash re-election.
            if let Some(stream) = oracle.as_mut() {
                if let Some(verdict) = stream.push(&graph, &hierarchy) {
                    verdict.emit_into(tracer);
                }
            }

            let informed_at_start = informed_count;

            let mut round_tokens = 0u64;
            let mut round_packets = 0u64;

            for inbox in inboxes.iter_mut() {
                inbox.clear();
            }

            // Mature delayed envelopes first: they land ahead of round-`r`
            // fresh deliveries, mirroring the event runtime's
            // flush-held-then-send order. A delivery maturing while its
            // receiver is down is lost, exactly like a fresh one — the
            // reliability layer (if on) recovers it by timer.
            if !trivial && faults.delay_ppm > 0 {
                for v in 0..n {
                    if delayed[v].is_empty() {
                        continue;
                    }
                    let entries = std::mem::take(&mut delayed[v]);
                    for (due, rid, msg) in entries {
                        if due > round {
                            delayed[v].push((due, rid, msg));
                            continue;
                        }
                        if arenas.is_down(round, v) {
                            continue;
                        }
                        if let Some((_, receivers)) = plane.as_mut() {
                            if !receivers[v].accept(msg.from.index(), rid) {
                                metrics.dups_discarded += 1;
                                continue;
                            }
                        }
                        inboxes[v].push(msg);
                    }
                }
            }

            // Send phase: every live node computes its messages against its
            // own view — node-independent, so it fans out over the pool.
            let outs: Vec<Vec<Outgoing>> = {
                let arenas = &arenas;
                let hierarchy: &Hierarchy = &hierarchy;
                pool::map_mut(protocols, threads, |i, p| {
                    if (!trivial && arenas.is_down(round, i)) || p.finished() {
                        return Vec::new();
                    }
                    let me = NodeId::from_index(i);
                    let view = LocalView {
                        me,
                        round,
                        role: hierarchy.role(me),
                        cluster: hierarchy.cluster_of(me),
                        head: hierarchy.head_of(me),
                        parent: hierarchy.parent_of(me),
                        neighbors: csr.neighbors(me),
                    };
                    p.send(&view)
                })
            };

            // Accounting + delivery: one sequential pass in sender-id
            // order, so metrics, trace events and inbox ordering are
            // identical whatever the send phase's thread count was.
            for (i, node_outs) in outs.into_iter().enumerate() {
                let me = NodeId::from_index(i);
                // Reliability-layer retransmits flush before the node's
                // fresh sends (the event runtime's step order). A link
                // absent from this round's topology leaves the entry
                // pending — the timer simply fires again later.
                if let Some((senders, receivers)) = plane.as_mut() {
                    if !arenas.is_down(round, i) {
                        for rt in senders[i].due(round) {
                            let v = NodeId::from_index(rt.to);
                            if !csr.has_edge(me, v) {
                                continue;
                            }
                            let (payload, directed) = rt.item;
                            let cost = payload.len() as u64;
                            round_tokens += cost;
                            round_packets += 1;
                            metrics.tokens_by_role[role_slot(hierarchy.role(me))] += cost;
                            metrics.retransmit_timeouts += 1;
                            tracer.retransmit_timeout(
                                round as u64,
                                me.0 as u64,
                                v.0 as u64,
                                rt.attempt,
                            );
                            if faulted_delivery(
                                &faults,
                                round,
                                me,
                                v,
                                &mut metrics,
                                &mut fault_window,
                                &mut backbone_fault,
                                &arenas.down_until,
                                tracer,
                            ) {
                                continue;
                            }
                            // Retransmits skip the delay/dup rolls: the
                            // envelope took its chaos at first send; the
                            // timer exists to outlast it.
                            if receivers[v.index()].accept(i, rt.rid) {
                                inboxes[v.index()].push(Incoming {
                                    from: me,
                                    directed,
                                    payload,
                                });
                            } else {
                                metrics.dups_discarded += 1;
                            }
                        }
                    }
                }
                // Per-(sender, round) envelope sequence — the delay/dup
                // hash key component, numbered exactly like the event
                // runtime's outgoing envelopes.
                let mut next_seq: u32 = 0;
                for out in node_outs {
                    if out.payload.is_empty() {
                        continue;
                    }
                    let seq = next_seq;
                    next_seq += 1;
                    let cost = out.payload.len() as u64;
                    round_tokens += cost;
                    round_packets += 1;
                    metrics.tokens_by_role[role_slot(hierarchy.role(me))] += cost;
                    if tracer.enabled() {
                        let w = cfg.cost_weights;
                        let bytes = cost * w.token_bytes + w.packet_header_bytes;
                        let role = obs_role(hierarchy.role(me));
                        let first = out.payload.first().expect("non-empty payload").0;
                        match out.dest {
                            Destination::Broadcast => tracer.head_broadcast(
                                round as u64,
                                me.0 as u64,
                                first,
                                cost,
                                role,
                                bytes,
                            ),
                            Destination::Unicast(v) => tracer.token_push(
                                round as u64,
                                me.0 as u64,
                                first,
                                cost,
                                role,
                                v.0 as u64,
                                bytes,
                            ),
                        }
                    }
                    if out.retransmit {
                        metrics.retransmits += 1;
                        if tracer.enabled() {
                            let dst = match out.dest {
                                Destination::Broadcast => None,
                                Destination::Unicast(v) => Some(v.0 as u64),
                            };
                            tracer.retransmit(round as u64, me.0 as u64, cost, dst);
                        }
                    }
                    match out.dest {
                        Destination::Broadcast => {
                            if cfg.record_messages {
                                record_message(
                                    &mut metrics,
                                    &cfg,
                                    &mut warned_log_cap,
                                    MessageRecord {
                                        round,
                                        from: me,
                                        to: None,
                                        delivered: true,
                                        tokens: out.payload.to_vec(),
                                    },
                                );
                            }
                            for &v in csr.neighbors(me) {
                                let rid = match plane.as_mut() {
                                    Some((senders, _)) => senders[i].register(
                                        v.index(),
                                        (out.payload.clone(), false),
                                        round,
                                    ),
                                    None => 0,
                                };
                                if !trivial
                                    && faulted_delivery(
                                        &faults,
                                        round,
                                        me,
                                        v,
                                        &mut metrics,
                                        &mut fault_window,
                                        &mut backbone_fault,
                                        &arenas.down_until,
                                        tracer,
                                    )
                                {
                                    continue;
                                }
                                if !trivial {
                                    let d = faults.delay_of(round, i, v.index(), seq);
                                    if d > 0 {
                                        metrics.delays_injected += 1;
                                        tracer.delayed(
                                            round as u64,
                                            me.0 as u64,
                                            v.0 as u64,
                                            d as u64,
                                        );
                                        delayed[v.index()].push((
                                            round + d,
                                            rid,
                                            Incoming {
                                                from: me,
                                                directed: false,
                                                payload: out.payload.clone(),
                                            },
                                        ));
                                        continue;
                                    }
                                    if faults.duplicates(round, i, v.index(), seq) {
                                        // Lock-step models injection plus the
                                        // receive plane's immediate discard
                                        // (token monotonicity makes the copy a
                                        // no-op); the event runtime actually
                                        // sends twice and dedups in the
                                        // RoundBuffer.
                                        metrics.duplicates_injected += 1;
                                        metrics.dups_discarded += 1;
                                        tracer.duplicated(round as u64, me.0 as u64, v.0 as u64);
                                    }
                                }
                                if let Some((_, receivers)) = plane.as_mut() {
                                    if !receivers[v.index()].accept(i, rid) {
                                        metrics.dups_discarded += 1;
                                        continue;
                                    }
                                }
                                inboxes[v.index()].push(Incoming {
                                    from: me,
                                    directed: false,
                                    payload: out.payload.clone(),
                                });
                            }
                        }
                        Destination::Unicast(v) => {
                            let delivered = csr.has_edge(me, v);
                            if cfg.record_messages {
                                record_message(
                                    &mut metrics,
                                    &cfg,
                                    &mut warned_log_cap,
                                    MessageRecord {
                                        round,
                                        from: me,
                                        to: Some(v),
                                        delivered,
                                        tokens: out.payload.to_vec(),
                                    },
                                );
                            }
                            if delivered {
                                let rid = match plane.as_mut() {
                                    Some((senders, _)) => senders[i].register(
                                        v.index(),
                                        (out.payload.clone(), true),
                                        round,
                                    ),
                                    None => 0,
                                };
                                if !trivial
                                    && faulted_delivery(
                                        &faults,
                                        round,
                                        me,
                                        v,
                                        &mut metrics,
                                        &mut fault_window,
                                        &mut backbone_fault,
                                        &arenas.down_until,
                                        tracer,
                                    )
                                {
                                    continue;
                                }
                                if !trivial {
                                    let d = faults.delay_of(round, i, v.index(), seq);
                                    if d > 0 {
                                        metrics.delays_injected += 1;
                                        tracer.delayed(
                                            round as u64,
                                            me.0 as u64,
                                            v.0 as u64,
                                            d as u64,
                                        );
                                        delayed[v.index()].push((
                                            round + d,
                                            rid,
                                            Incoming {
                                                from: me,
                                                directed: true,
                                                payload: out.payload,
                                            },
                                        ));
                                        continue;
                                    }
                                    if faults.duplicates(round, i, v.index(), seq) {
                                        metrics.duplicates_injected += 1;
                                        metrics.dups_discarded += 1;
                                        tracer.duplicated(round as u64, me.0 as u64, v.0 as u64);
                                    }
                                }
                                if let Some((_, receivers)) = plane.as_mut() {
                                    if !receivers[v.index()].accept(i, rid) {
                                        metrics.dups_discarded += 1;
                                        continue;
                                    }
                                }
                                inboxes[v.index()].push(Incoming {
                                    from: me,
                                    directed: true,
                                    payload: out.payload,
                                });
                            } else {
                                metrics.dropped_unicasts += 1;
                            }
                        }
                    }
                }
            }

            // The round barrier makes every receiver's ledger consultable
            // at once, so acks apply omnisciently here — the same value the
            // event runtime's piggybacked markers would deliver one round
            // later.
            if let Some((senders, receivers)) = plane.as_mut() {
                for (i, s) in senders.iter_mut().enumerate() {
                    s.sync_acks(|to| receivers[to].cum(i));
                }
            }

            // Within-round inbox permutation: reorder is adversarial but
            // pure, keyed on `(fault_seed, round, receiver)`.
            if !trivial && faults.reorder {
                for (i, inbox) in inboxes.iter_mut().enumerate() {
                    faults.shuffle(round, i, inbox);
                }
            }

            // Receive phase: node-independent again — fan out, then fold
            // the freshly-informed flags back into the oracle counter.
            let newly_informed: Vec<bool> = {
                let arenas = &arenas;
                let inboxes = &inboxes;
                let universe = &universe;
                let hierarchy: &Hierarchy = &hierarchy;
                pool::map_mut(protocols, threads, |i, p| {
                    if !trivial && arenas.is_down(round, i) {
                        return false; // deliveries to crashed nodes are lost
                    }
                    let me = NodeId::from_index(i);
                    let view = LocalView {
                        me,
                        round,
                        role: hierarchy.role(me),
                        cluster: hierarchy.cluster_of(me),
                        head: hierarchy.head_of(me),
                        parent: hierarchy.parent_of(me),
                        neighbors: csr.neighbors(me),
                    };
                    p.receive(&view, &inboxes[i]);
                    !arenas.informed[i] && !inboxes[i].is_empty() && universe.is_subset(p.known())
                })
            };
            for (i, fresh) in newly_informed.into_iter().enumerate() {
                if fresh {
                    arenas.informed[i] = true;
                    informed_count += 1;
                }
            }

            metrics.tokens_sent += round_tokens;
            metrics.packets_sent += round_packets;
            if cfg.record_rounds {
                metrics.rounds.push(RoundMetrics {
                    tokens_sent: round_tokens,
                    packets_sent: round_packets,
                    informed_nodes: informed_at_start,
                });
            }
            rounds_executed = round + 1;

            if completion_round.is_none() && informed_count == n {
                completion_round = Some(rounds_executed);
                if cfg.stop_on_completion {
                    budget_exhausted = false;
                    break;
                }
            }
            // All protocols locally finished and nothing further can
            // change — unless the delivery plane still holds envelopes in
            // flight (delayed or unacked), which can inform nodes after
            // every protocol quiesced.
            let plane_in_flight = delayed.iter().map(Vec::len).sum::<usize>()
                + plane
                    .as_ref()
                    .map_or(0, |(s, _)| s.iter().map(SenderWindow::in_flight).sum());
            if protocols.iter().all(|p| p.finished()) && plane_in_flight == 0 {
                budget_exhausted = false;
                break;
            }
        }

        let stability = oracle.map(|stream| {
            let (last, report) = stream.finish();
            if let Some(verdict) = last {
                verdict.emit_into(tracer);
            }
            report
        });
        let outcome = match completion_round {
            Some(round) => Outcome::Completed { round },
            None => {
                // Tokens missing somewhere = universe minus the
                // intersection of all nodes' known sets (word-parallel
                // fold instead of a k × n membership scan).
                let mut everywhere = universe.clone();
                for p in protocols.iter() {
                    if everywhere.is_empty() {
                        break;
                    }
                    let known = p.known();
                    everywhere = everywhere.iter().filter(|t| known.contains(t)).collect();
                }
                let missing_tokens = k - everywhere.len();
                // The oracle's attribution (exact definition, exact round)
                // outranks the coarse fault-window heuristic.
                let oracle_violation = stability.as_ref().and_then(|s| s.violation);
                match (oracle_violation, fault_window) {
                    (Some(v), _) => Outcome::AssumptionViolated {
                        window: (v.window_start as u64, v.round as u64),
                        def: v.def,
                    },
                    (None, Some(window)) => Outcome::AssumptionViolated {
                        window,
                        def: if backbone_fault { 2 } else { 1 },
                    },
                    (None, None) => Outcome::Stalled {
                        missing_tokens,
                        budget_exhausted,
                    },
                }
            }
        };
        tracer.run_end(rounds_executed as u64, completion_round.is_some());
        let wall = lockstep_wall(start, metrics.tokens_sent);
        RunReport {
            rounds_executed,
            completion_round,
            metrics,
            k,
            cost_weights: cfg.cost_weights,
            outcome,
            wall,
            stability,
            stall: None,
        }
    }
}

/// Wall-clock summary for a lock-step run: elapsed time and throughput
/// only. Per-token latency tracking is an event-mode feature — keeping it
/// off the lock-step path leaves the million-node hot loop untouched.
fn lockstep_wall(start: Instant, tokens_sent: u64) -> WallClock {
    let elapsed_ns = start.elapsed().as_nanos() as u64;
    let secs = elapsed_ns as f64 / 1e9;
    WallClock {
        elapsed_ns,
        tokens_per_sec: if secs > 0.0 {
            tokens_sent as f64 / secs
        } else {
            0.0
        },
        latency: None,
        reassembly_stalls: 0,
        mailbox_depth_max: 0,
    }
}

/// Resolve the thread count for event mode: explicit values win (clamped
/// to the node count); `0` always goes wide, because event mode exists to
/// exercise true concurrency even on small scenarios.
pub(crate) fn resolve_event_threads(threads: usize, n: usize) -> usize {
    let t = if threads != 0 {
        threads
    } else {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    };
    t.min(n).max(1)
}

/// Resolve the configured thread count: explicit values win; `0` goes
/// parallel only past the node-count threshold.
fn resolve_threads(threads: usize, n: usize) -> usize {
    if threads != 0 {
        return threads;
    }
    if n >= PARALLEL_NODE_THRESHOLD {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        1
    }
}

/// Append to the message log, stopping with a loud warning at the cap.
fn record_message(
    metrics: &mut Metrics,
    cfg: &RunConfig<'_>,
    warned: &mut bool,
    record: MessageRecord,
) {
    if metrics.log.len() >= cfg.message_log_cap {
        metrics.log_truncated = true;
        if !*warned {
            *warned = true;
            eprintln!(
                "hinet-sim: message log reached RunConfig::message_log_cap ({}); \
                 further MessageRecords are dropped — raise the cap or disable \
                 record_messages for large runs",
                cfg.message_log_cap
            );
        }
        return;
    }
    metrics.log.push(record);
}

/// Fault-plane delivery gate: returns `true` when the `from → to`
/// delivery is lost this round, accounting and tracing the fault.
/// Deliveries to crashed receivers are lost silently — the crash event
/// already explains them.
#[allow(clippy::too_many_arguments)]
fn faulted_delivery(
    faults: &FaultPlan,
    round: usize,
    from: NodeId,
    to: NodeId,
    metrics: &mut Metrics,
    fault_window: &mut Option<(u64, u64)>,
    backbone_fault: &mut bool,
    down_until: &[usize],
    tracer: &mut Tracer,
) -> bool {
    if round < down_until[to.index()] {
        return true;
    }
    let kind = if faults.partitioned(round, from.index(), to.index()) {
        FaultKind::Partition
    } else if faults.drops_message(round, from.index(), to.index()) {
        FaultKind::Loss
    } else {
        return false;
    };
    if kind == FaultKind::Partition {
        *backbone_fault = true;
    }
    metrics.faults_injected += 1;
    note_fault(fault_window, round as u64);
    tracer.fault_injected(round as u64, from.0 as u64, Some(to.0 as u64), kind);
    true
}

/// Widen the `(first, last)` fault window to include `round`.
pub(crate) fn note_fault(window: &mut Option<(u64, u64)>, round: u64) {
    *window = Some(match *window {
        None => (round, round),
        Some((first, _)) => (first, round),
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::round_robin_assignment;
    use hinet_cluster::ctvg::{CtvgTrace, CtvgTraceProvider};
    use hinet_cluster::hierarchy::single_cluster;
    use hinet_graph::trace::TvgTrace;
    use hinet_graph::Graph;
    use std::sync::Arc;

    /// Toy protocol: broadcast entire TA every round (flat flooding).
    struct Flood {
        ta: TokenSet,
    }

    impl Flood {
        fn new() -> Self {
            Flood {
                ta: TokenSet::new(),
            }
        }
    }

    impl Protocol for Flood {
        fn on_start(&mut self, _me: NodeId, initial: &[TokenId]) {
            self.ta.extend(initial.iter().copied());
        }
        fn send(&mut self, _view: &LocalView<'_>) -> Vec<Outgoing> {
            if self.ta.is_empty() {
                vec![]
            } else {
                vec![Outgoing::broadcast_set(&self.ta)]
            }
        }
        fn receive(&mut self, _view: &LocalView<'_>, inbox: &[Incoming]) {
            for m in inbox {
                m.payload.union_into(&mut self.ta);
            }
        }
        fn known(&self) -> &TokenSet {
            &self.ta
        }
        fn on_restart(&mut self, me: NodeId, retained: &[TokenId]) {
            self.ta.clear();
            self.on_start(me, retained);
        }
    }

    fn star_provider(n: usize, rounds: usize) -> CtvgTraceProvider {
        let g = Arc::new(Graph::star(n));
        let h = Arc::new(single_cluster(n, NodeId(0)));
        let t = TvgTrace::new((0..rounds).map(|_| Arc::clone(&g)).collect());
        CtvgTraceProvider::new(CtvgTrace::new(
            t,
            (0..rounds).map(|_| Arc::clone(&h)).collect(),
        ))
    }

    #[test]
    fn flooding_on_star_completes_in_two_rounds() {
        let mut provider = star_provider(5, 10);
        let mut protocols: Vec<Flood> = (0..5).map(|_| Flood::new()).collect();
        let assignment = round_robin_assignment(5, 5);
        let report = Engine::with_defaults().run(&mut provider, &mut protocols, &assignment);
        // Leaf tokens reach the hub in round 1, hub re-broadcasts in round 2.
        assert_eq!(report.completion_round, Some(2));
        assert!(report.completed());
        assert_eq!(report.k, 5);
    }

    #[test]
    fn token_accounting_counts_payloads_once() {
        let mut provider = star_provider(3, 10);
        let mut protocols: Vec<Flood> = (0..3).map(|_| Flood::new()).collect();
        // One token at the hub: round 1 = hub broadcasts 1 token (leaves have
        // nothing). After round 1 everyone knows it.
        let assignment = vec![vec![TokenId(0)], vec![], vec![]];
        let report = Engine::with_defaults().run(&mut provider, &mut protocols, &assignment);
        assert_eq!(report.completion_round, Some(1));
        // Hub sent 1 token (broadcast counted once despite 2 receivers).
        assert_eq!(report.metrics.tokens_sent, 1);
        assert_eq!(report.metrics.packets_sent, 1);
    }

    #[test]
    fn per_round_series_recorded() {
        let mut provider = star_provider(4, 10);
        let mut protocols: Vec<Flood> = (0..4).map(|_| Flood::new()).collect();
        let assignment = round_robin_assignment(4, 4);
        let cfg = RunConfig::new().record_rounds(true);
        let report = Engine::new(cfg).run(&mut provider, &mut protocols, &assignment);
        assert_eq!(report.metrics.rounds.len(), report.rounds_executed);
        assert!(report.metrics.rounds[0].tokens_sent > 0);
        assert_eq!(report.metrics.rounds[0].informed_nodes, 0);
    }

    #[test]
    fn max_rounds_cap_reported_as_incomplete() {
        // Disconnected graph: token can never cross.
        let g = Arc::new(Graph::from_edges(2, []));
        let h = Arc::new({
            use hinet_cluster::hierarchy::{ClusterId, Hierarchy, Role};
            Hierarchy::new(
                vec![Role::Head, Role::Head],
                vec![Some(ClusterId(NodeId(0))), Some(ClusterId(NodeId(1)))],
            )
        });
        let t = TvgTrace::new(vec![Arc::clone(&g)]);
        let mut provider = CtvgTraceProvider::new(CtvgTrace::new(t, vec![h]));
        let mut protocols: Vec<Flood> = (0..2).map(|_| Flood::new()).collect();
        let assignment = vec![vec![TokenId(0)], vec![]];
        let cfg = RunConfig::new().max_rounds(5);
        let report = Engine::new(cfg).run(&mut provider, &mut protocols, &assignment);
        assert_eq!(report.completion_round, None);
        assert!(!report.completed());
        assert_eq!(report.rounds_executed, 5);
    }

    #[test]
    fn message_log_records_both_kinds() {
        let mut provider = star_provider(3, 5);
        let mut protocols: Vec<Flood> = (0..3).map(|_| Flood::new()).collect();
        let assignment = vec![vec![TokenId(0)], vec![TokenId(1)], vec![]];
        let cfg = RunConfig::new().record_messages(true);
        let report = Engine::new(cfg).run(&mut provider, &mut protocols, &assignment);
        assert!(report.completed());
        assert_eq!(
            report.metrics.log.len() as u64,
            report.metrics.packets_sent,
            "one record per packet"
        );
        assert!(!report.metrics.log_truncated);
        let first = &report.metrics.log[0];
        assert_eq!(first.round, 0);
        assert!(first.delivered);
        assert_eq!(first.to, None, "flooding broadcasts");
        let total: usize = report.metrics.log.iter().map(|m| m.tokens.len()).sum();
        assert_eq!(total as u64, report.metrics.tokens_sent);
    }

    #[test]
    fn message_log_cap_truncates_loudly() {
        let mut provider = star_provider(4, 10);
        let mut protocols: Vec<Flood> = (0..4).map(|_| Flood::new()).collect();
        let assignment = round_robin_assignment(4, 4);
        let cfg = RunConfig::new().record_messages(true).message_log_cap(2);
        let report = Engine::new(cfg).run(&mut provider, &mut protocols, &assignment);
        assert!(report.completed(), "the cap must not perturb the run");
        assert_eq!(report.metrics.log.len(), 2, "log stops at the cap");
        assert!(report.metrics.log_truncated, "truncation is flagged");
        assert!(report.metrics.packets_sent > 2);
    }

    #[test]
    fn byte_cost_combines_tokens_and_packets() {
        let m = Metrics {
            tokens_sent: 10,
            packets_sent: 3,
            ..Metrics::default()
        };
        let w = CostWeights {
            token_bytes: 16,
            packet_header_bytes: 24,
        };
        assert_eq!(m.total_bytes(w), 10 * 16 + 3 * 24);
        assert_eq!(Metrics::default().total_bytes(CostWeights::default()), 0);
    }

    #[test]
    fn already_complete_needs_zero_rounds() {
        let mut provider = star_provider(2, 2);
        let mut protocols: Vec<Flood> = (0..2).map(|_| Flood::new()).collect();
        let assignment = vec![vec![TokenId(0)], vec![TokenId(0)]];
        let report = Engine::with_defaults().run(&mut provider, &mut protocols, &assignment);
        assert_eq!(report.completion_round, Some(0));
        assert_eq!(report.metrics.tokens_sent, 0);
    }

    #[test]
    fn dropped_unicast_counted() {
        struct BadUnicast {
            ta: TokenSet,
        }
        impl Protocol for BadUnicast {
            fn on_start(&mut self, _me: NodeId, initial: &[TokenId]) {
                self.ta.extend(initial.iter().copied());
            }
            fn send(&mut self, view: &LocalView<'_>) -> Vec<Outgoing> {
                if view.me == NodeId(1) && !self.ta.is_empty() {
                    // Node 2 is not a neighbor of 1 in a star.
                    vec![Outgoing::unicast_set(NodeId(2), &self.ta)]
                } else {
                    vec![]
                }
            }
            fn receive(&mut self, _view: &LocalView<'_>, inbox: &[Incoming]) {
                for m in inbox {
                    m.payload.union_into(&mut self.ta);
                }
            }
            fn known(&self) -> &TokenSet {
                &self.ta
            }
        }
        let mut provider = star_provider(3, 3);
        let mut protocols: Vec<BadUnicast> = (0..3)
            .map(|_| BadUnicast {
                ta: TokenSet::new(),
            })
            .collect();
        let assignment = vec![vec![], vec![TokenId(0)], vec![]];
        let cfg = RunConfig::new().max_rounds(2);
        let report = Engine::new(cfg).run(&mut provider, &mut protocols, &assignment);
        assert_eq!(report.metrics.dropped_unicasts, 2, "one drop per round");
        assert_eq!(
            report.metrics.tokens_sent, 2,
            "sends are paid even if dropped"
        );
        assert!(!report.completed());
    }

    #[test]
    fn traced_run_matches_report_and_untraced_run() {
        use hinet_rt::obs::{Event, ObsConfig, TraceSummary, Tracer};

        let assignment = round_robin_assignment(5, 5);

        let mut provider = star_provider(5, 10);
        let mut protocols: Vec<Flood> = (0..5).map(|_| Flood::new()).collect();
        let baseline = Engine::with_defaults().run(&mut provider, &mut protocols, &assignment);

        let mut provider = star_provider(5, 10);
        let mut protocols: Vec<Flood> = (0..5).map(|_| Flood::new()).collect();
        let mut tracer = Tracer::new(ObsConfig::full());
        let report = Engine::new(RunConfig::new().tracer(&mut tracer)).run(
            &mut provider,
            &mut protocols,
            &assignment,
        );

        // Tracing must not perturb the run.
        assert_eq!(report.completion_round, baseline.completion_round);
        assert_eq!(report.metrics.tokens_sent, baseline.metrics.tokens_sent);

        // Tracer counters agree with the report's own accounting.
        let c = tracer.counters();
        assert_eq!(c.rounds, report.rounds_executed as u64);
        assert_eq!(c.tokens_sent, report.metrics.tokens_sent);
        assert_eq!(c.packets_sent, report.metrics.packets_sent);
        assert_eq!(c.tokens_by_role, report.metrics.tokens_by_role);
        assert_eq!(c.bytes_sent, report.total_bytes());

        let summary = TraceSummary::from_tracer(&tracer);
        assert_eq!(summary.completed, Some(true));
        let starts = tracer
            .events()
            .filter(|e| e.event == Event::RoundStart)
            .count();
        assert_eq!(starts, report.rounds_executed);
    }

    #[test]
    fn parallel_round_loop_produces_identical_trace_bytes() {
        use hinet_rt::obs::{ObsConfig, Tracer};

        let assignment = round_robin_assignment(9, 7);
        let jsonl = |threads: usize| {
            let mut provider = star_provider(9, 10);
            let mut protocols: Vec<Flood> = (0..9).map(|_| Flood::new()).collect();
            let mut tracer = Tracer::new(ObsConfig::full());
            Engine::new(RunConfig::new().threads(threads).tracer(&mut tracer)).run(
                &mut provider,
                &mut protocols,
                &assignment,
            );
            tracer.to_jsonl()
        };
        let single = jsonl(1);
        assert_eq!(single, jsonl(4), "4 threads must not perturb the trace");
        assert_eq!(single, jsonl(3), "odd splits must not perturb the trace");
    }

    #[test]
    fn finished_protocols_stop_the_run() {
        struct Mute {
            ta: TokenSet,
        }
        impl Protocol for Mute {
            fn on_start(&mut self, _me: NodeId, initial: &[TokenId]) {
                self.ta.extend(initial.iter().copied());
            }
            fn send(&mut self, _view: &LocalView<'_>) -> Vec<Outgoing> {
                vec![]
            }
            fn receive(&mut self, _view: &LocalView<'_>, _inbox: &[Incoming]) {}
            fn known(&self) -> &TokenSet {
                &self.ta
            }
            fn finished(&self) -> bool {
                true
            }
        }
        let mut provider = star_provider(3, 100);
        let mut protocols: Vec<Mute> = (0..3)
            .map(|_| Mute {
                ta: TokenSet::new(),
            })
            .collect();
        let assignment = vec![vec![TokenId(0)], vec![], vec![]];
        let report = Engine::with_defaults().run(&mut provider, &mut protocols, &assignment);
        assert_eq!(report.rounds_executed, 1, "all finished after first round");
        assert!(!report.completed());
    }

    #[test]
    fn outcome_reports_completion_and_stall() {
        let mut provider = star_provider(5, 10);
        let mut protocols: Vec<Flood> = (0..5).map(|_| Flood::new()).collect();
        let assignment = round_robin_assignment(5, 5);
        let report = Engine::with_defaults().run(&mut provider, &mut protocols, &assignment);
        assert_eq!(report.outcome, Outcome::Completed { round: 2 });

        // Disconnected pair: the token never crosses, no faults involved.
        let g = Arc::new(Graph::from_edges(2, []));
        let h = Arc::new({
            use hinet_cluster::hierarchy::{ClusterId, Hierarchy, Role};
            Hierarchy::new(
                vec![Role::Head, Role::Head],
                vec![Some(ClusterId(NodeId(0))), Some(ClusterId(NodeId(1)))],
            )
        });
        let t = TvgTrace::new(vec![Arc::clone(&g)]);
        let mut provider = CtvgTraceProvider::new(CtvgTrace::new(t, vec![h]));
        let mut protocols: Vec<Flood> = (0..2).map(|_| Flood::new()).collect();
        let assignment = vec![vec![TokenId(0)], vec![]];
        let cfg = RunConfig::new().max_rounds(5);
        let report = Engine::new(cfg).run(&mut provider, &mut protocols, &assignment);
        assert_eq!(
            report.outcome,
            Outcome::Stalled {
                missing_tokens: 1,
                budget_exhausted: true
            }
        );
        assert_eq!(
            report.outcome.to_string(),
            "stalled (1 tokens undelivered, budget exhausted)"
        );
    }

    #[test]
    fn total_loss_blocks_dissemination_and_violates_assumption() {
        use crate::fault::FaultPlan;

        let mut provider = star_provider(3, 4);
        let mut protocols: Vec<Flood> = (0..3).map(|_| Flood::new()).collect();
        let assignment = vec![vec![TokenId(0)], vec![], vec![]];
        let faults = FaultPlan::new(9).with_loss_ppm(1_000_000);
        let cfg = RunConfig::new().max_rounds(4).faults(faults);
        let report = Engine::new(cfg).run(&mut provider, &mut protocols, &assignment);
        assert!(!report.completed());
        assert!(report.metrics.faults_injected > 0);
        assert_eq!(
            report.outcome,
            Outcome::AssumptionViolated {
                window: (0, 3),
                def: 1
            },
            "pure message loss is a Definition-1 (per-round delivery) violation"
        );
    }

    #[test]
    fn scheduled_crash_counts_and_recovers() {
        use crate::fault::FaultPlan;

        let mut provider = star_provider(3, 20);
        let mut protocols: Vec<Flood> = (0..3).map(|_| Flood::new()).collect();
        let assignment = vec![vec![], vec![TokenId(0)], vec![]];
        // Crash the hub (the head) in round 1 for one round.
        let faults = FaultPlan::new(0).with_crash_at(1, 0).with_down_rounds(1);
        let report = Engine::new(RunConfig::new().faults(faults)).run(
            &mut provider,
            &mut protocols,
            &assignment,
        );
        assert_eq!(report.metrics.crashes, 1);
        assert_eq!(report.metrics.recoveries, 1);
        assert!(report.completed(), "the run heals after the hub restarts");
        assert!(matches!(report.outcome, Outcome::Completed { .. }));
    }

    #[test]
    fn durable_tokens_survive_a_crash_volatile_ones_do_not() {
        use crate::fault::FaultPlan;

        let run = |durable: bool| {
            let mut provider = star_provider(3, 20);
            let mut protocols: Vec<Flood> = (0..3).map(|_| Flood::new()).collect();
            let assignment = vec![vec![], vec![TokenId(0)], vec![]];
            let mut faults = FaultPlan::new(0).with_crash_at(1, 0).with_down_rounds(1);
            if durable {
                faults = faults.with_durable_tokens(true);
            }
            Engine::new(RunConfig::new().faults(faults))
                .run(&mut provider, &mut protocols, &assignment)
                .completion_round
                .unwrap()
        };
        // The hub learns the token in round 0 and crashes in round 1. With
        // durable storage it re-broadcasts right after recovery; without, it
        // must first re-learn the token from the leaf.
        assert!(run(true) < run(false));
    }

    #[test]
    fn faulted_runs_replay_exactly() {
        use crate::fault::FaultPlan;

        let run = || {
            let mut provider = star_provider(4, 30);
            let mut protocols: Vec<Flood> = (0..4).map(|_| Flood::new()).collect();
            let assignment = round_robin_assignment(4, 4);
            let faults = FaultPlan::new(42).with_loss_ppm(300_000);
            Engine::new(RunConfig::new().faults(faults)).run(
                &mut provider,
                &mut protocols,
                &assignment,
            )
        };
        let (a, b) = (run(), run());
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.metrics.faults_injected, b.metrics.faults_injected);
        assert_eq!(a.metrics.tokens_sent, b.metrics.tokens_sent);
        assert!(a.metrics.faults_injected > 0, "30% loss must bite");
    }

    #[test]
    fn trivial_plan_is_byte_identical_to_plain_tracing() {
        use crate::fault::FaultPlan;
        use hinet_rt::obs::ObsConfig;

        let assignment = round_robin_assignment(5, 5);
        let mut provider = star_provider(5, 10);
        let mut protocols: Vec<Flood> = (0..5).map(|_| Flood::new()).collect();
        let mut plain = Tracer::new(ObsConfig::full());
        Engine::new(RunConfig::new().tracer(&mut plain)).run(
            &mut provider,
            &mut protocols,
            &assignment,
        );

        let mut provider = star_provider(5, 10);
        let mut protocols: Vec<Flood> = (0..5).map(|_| Flood::new()).collect();
        let mut faulted = Tracer::new(ObsConfig::full());
        Engine::new(
            RunConfig::new()
                .faults(FaultPlan::none())
                .tracer(&mut faulted),
        )
        .run(&mut provider, &mut protocols, &assignment);
        assert_eq!(plain.to_jsonl(), faulted.to_jsonl());
    }

    #[test]
    fn partition_severs_cross_traffic_and_flags_backbone() {
        use crate::fault::{FaultPlan, Partition};

        let mut provider = star_provider(4, 6);
        let mut protocols: Vec<Flood> = (0..4).map(|_| Flood::new()).collect();
        let assignment = round_robin_assignment(4, 4);
        // Cut {0,1} from {2,3} for the whole run: leaves 2,3 can never learn
        // token 0 or 1 (and vice versa) because every path crosses the hub cut.
        let faults = FaultPlan::new(1).with_partition(Partition {
            start: 0,
            end: 6,
            cut: 2,
        });
        let cfg = RunConfig::new().max_rounds(6).faults(faults);
        let report = Engine::new(cfg).run(&mut provider, &mut protocols, &assignment);
        assert!(!report.completed());
        assert!(report.metrics.faults_injected > 0);
        assert!(
            matches!(report.outcome, Outcome::AssumptionViolated { def: 2, .. }),
            "partitions violate Definition 2 (backbone stability), got {:?}",
            report.outcome
        );
    }

    #[test]
    fn stability_oracle_pins_a_head_crash_to_the_exact_round() {
        use crate::fault::FaultPlan;

        let mut provider = star_provider(4, 6);
        let mut protocols: Vec<Flood> = (0..4).map(|_| Flood::new()).collect();
        let assignment = round_robin_assignment(4, 4);
        // Crash the hub (the sole head) in round 1 for the rest of the run:
        // re-election changes the head set mid-window, and the leaves can no
        // longer exchange tokens, so the run stalls.
        let faults = FaultPlan::new(0).with_crash_at(1, 0).with_down_rounds(100);
        let cfg = RunConfig::new()
            .max_rounds(6)
            .faults(faults)
            .stability_oracle(Some((6, 1)));
        let report = Engine::new(cfg).run(&mut provider, &mut protocols, &assignment);
        assert!(!report.completed());
        // The oracle's attribution replaces the coarse fault-window heuristic
        // (which would have reported the whole window (1, 5)).
        assert_eq!(
            report.outcome,
            Outcome::AssumptionViolated {
                window: (0, 1),
                def: 2
            },
            "the oracle names the exact round the head set changed"
        );
        let stability = report.stability.expect("oracle was configured");
        assert_eq!(stability.rounds, 6);
        assert_eq!(
            stability.violation,
            Some(hinet_cluster::stability::stream::Violation {
                def: 2,
                window_start: 0,
                round: 1
            })
        );
        assert_eq!(stability.hinet_windows, 0);
    }

    #[test]
    fn stability_oracle_is_quiet_on_a_clean_run() {
        let mut provider = star_provider(4, 10);
        let mut protocols: Vec<Flood> = (0..4).map(|_| Flood::new()).collect();
        let assignment = round_robin_assignment(4, 4);
        let cfg = RunConfig::new().stability_oracle(Some((2, 1)));
        let report = Engine::new(cfg).run(&mut provider, &mut protocols, &assignment);
        assert!(report.completed());
        let stability = report.stability.expect("oracle was configured");
        assert_eq!(stability.violation, None);
        assert_eq!(
            stability.windows, stability.hinet_windows,
            "a static star is (T, L)-HiNet for every window"
        );
        assert!(stability.rounds >= 1);
    }
}
