//! Property tests for the trace-diff engine, on the seeded
//! `hinet_rt::check` harness (replay any failure with
//! `HINET_CHECK_SEED=<seed printed on failure>`).
//!
//! Two families: (1) `diff(t, t')` is empty when `t` and `t'` record the
//! same seeded scenario, across every algorithm including `rlnc`; (2) a
//! single injected perturbation — metadata edit, counter bump, dropped
//! event, reordered round — is always detected at exactly the right
//! severity.

use hinet::core::params::required_phase_length;
use hinet::rt::check::check;
use hinet::rt::obs::diff::{diff_traces, DiffConfig, Severity};
use hinet::rt::obs::{ObsConfig, ParsedTrace, Tracer};
use hinet::scenario::Scenario;

/// (algorithm, dynamics) pairs covering every CLI-selectable executor.
const ALGOS: &[(&str, &str)] = &[
    ("alg1", "hinet"),
    ("remark1", "hinet"),
    ("alg2", "hinet"),
    ("alg2-mh", "hinet"),
    ("klo-phased", "flat-t"),
    ("klo-flood", "flat-1"),
    ("gossip", "hinet"),
    ("kactive", "flat-1"),
    ("delta", "hinet"),
    ("rlnc", "flat-1"),
];

fn scenario(algorithm: &str, dynamics: &str, n: usize, k: usize, seed: u64) -> Scenario {
    let (alpha, l) = (2, 2);
    let t = required_phase_length(k, alpha, l);
    Scenario {
        n,
        k,
        alpha,
        l,
        theta: (n / 3).max(1),
        seed,
        algorithm: algorithm.into(),
        dynamics: dynamics.into(),
        t,
        budget: 4 * n + 4 * t,
        loss_ppm: 0,
        crash_ppm: 0,
        crash_at: vec![],
        target_heads: false,
        fault_seed: 0,
        retransmit: false,
        durable_tokens: false,
        partitions: vec![],
        down_rounds: 1,
        delay_ppm: 0,
        max_delay: 1,
        dup_ppm: 0,
        reorder: false,
        reliable: false,
        stall_rounds: 0,
        mode: hinet_sim::ExecMode::Lockstep,
    }
}

fn record(sc: &Scenario) -> ParsedTrace {
    let mut tracer = Tracer::new(ObsConfig::full());
    sc.run_traced(&mut tracer).expect("scenario must run");
    ParsedTrace::parse_jsonl(&tracer.to_jsonl()).expect("round-trip must parse")
}

#[test]
fn diff_of_two_recordings_of_the_same_scenario_is_empty() {
    check("diff_self_empty", 12, |ctx| {
        let &(algorithm, dynamics) = ctx.pick(ALGOS);
        let &seed = ctx.pick(&[1u64, 2, 5, 9, 13, 21]);
        let &n = ctx.pick(&[16usize, 20, 24]);
        let sc = scenario(algorithm, dynamics, n, 3, seed);
        let (a, b) = (record(&sc), record(&sc));
        let d = diff_traces(&a, &b, &DiffConfig::default());
        assert!(
            d.is_empty(),
            "{algorithm} on {dynamics} (n={n}, seed={seed}) self-diffed non-empty:\n{}",
            d.to_text()
        );
        assert!(d.downgrade.is_none(), "full traces must not be downgraded");
    });
}

#[test]
fn single_perturbations_are_detected_at_the_right_severity() {
    check("diff_perturbations", 16, |ctx| {
        let &(algorithm, dynamics) = ctx.pick(&[
            ("alg1", "hinet"),
            ("klo-flood", "flat-1"),
            ("rlnc", "flat-1"),
        ]);
        let &seed = ctx.pick(&[3u64, 7, 11, 19]);
        let sc = scenario(algorithm, dynamics, 18, 3, seed);
        let a = record(&sc);
        let mut b = a.clone();

        let kind = *ctx.pick(&[0u8, 1, 2, 3]);
        let (severity, what) = match kind {
            0 => {
                // Metadata edit: the traces describe different scenarios.
                let slot = b
                    .meta
                    .iter_mut()
                    .find(|(key, _)| key == "seed")
                    .expect("scenario traces stamp their seed");
                slot.1 = format!("{}1", slot.1);
                (Severity::Meta, "meta edit")
            }
            1 => {
                // Counter bump: behaviour totals lie.
                b.counters.tokens_sent += 1;
                (Severity::Counter, "counter bump")
            }
            2 => {
                // Dropped event: the stream thins but counters stand.
                let victim = *ctx.pick(&(0..b.events.len()).collect::<Vec<_>>());
                b.events.remove(victim);
                (Severity::Event, "dropped event")
            }
            _ => {
                // Reordered round: swap the first adjacent distinct pair at
                // a random starting point (wrapping), leaving tallies and
                // counters untouched.
                let start = *ctx.pick(&(0..b.events.len()).collect::<Vec<_>>());
                let i = (0..b.events.len() - 1)
                    .map(|off| (start + off) % (b.events.len() - 1))
                    .find(|&i| b.events[i] != b.events[i + 1])
                    .expect("a trace always has two adjacent distinct events");
                b.events.swap(i, i + 1);
                (Severity::Event, "reordered events")
            }
        };

        let d = diff_traces(&a, &b, &DiffConfig::default());
        assert!(
            d.count_at(severity) >= 1,
            "{what} on {algorithm} (seed={seed}) missed at {:?}:\n{}",
            severity,
            d.to_text()
        );
        for other in [Severity::Meta, Severity::Counter, Severity::Event] {
            if other != severity {
                assert_eq!(
                    d.count_at(other),
                    0,
                    "{what} on {algorithm} (seed={seed}) leaked into {:?}:\n{}",
                    other,
                    d.to_text()
                );
            }
        }
        if severity == Severity::Event {
            assert!(
                d.first_diverging_round.is_some(),
                "event-severity divergence must name the first diverging round"
            );
        }
    });
}

#[test]
fn guard_downgrades_incomparable_streams_instead_of_spurious_divergence() {
    check("diff_sampling_guard", 8, |ctx| {
        let &seed = ctx.pick(&[2u64, 6, 10]);
        let sc = scenario("alg1", "hinet", 18, 3, seed);
        let full = record(&sc);
        // The same scenario captured at a sampling rate: data events thin,
        // counters stay exact. Event comparison must be refused, counters
        // must still agree.
        let mut tracer = Tracer::new(ObsConfig::sampled(*ctx.pick(&[2u32, 3, 5])));
        sc.run_traced(&mut tracer).unwrap();
        let sampled = ParsedTrace::parse_jsonl(&tracer.to_jsonl()).unwrap();

        let d = diff_traces(&full, &sampled, &DiffConfig::default());
        assert!(d.downgrade.is_some(), "mixed modes must downgrade");
        assert_eq!(d.count_at(Severity::Event), 0, "{}", d.to_text());
        assert!(
            d.is_empty(),
            "same scenario at different sampling must still agree on meta + counters:\n{}",
            d.to_text()
        );
    });
}
