//! Golden-trace regression suite: the behavioural CI gate.
//!
//! `tests/golden/` holds one pinned `hinet-trace/v1` artifact per covered
//! algorithm. Each test re-runs the scenario recorded in a golden's own
//! header metadata and requires an *empty* structured diff — any change to
//! the engine, an algorithm, a dynamics generator or the tracer that
//! alters behaviour shows up here as a named first-diverging-round, not as
//! a silently different end state.
//!
//! Intentional behaviour changes are blessed with
//! `./ci.sh --update-golden` (or per file:
//! `hinet trace --diff tests/golden/<name>.jsonl --update-golden`).

use hinet::rt::obs::diff::{diff_traces, DiffConfig};
use hinet::rt::obs::{ObsConfig, ParsedTrace, Tracer};
use hinet::scenario::Scenario;
use std::path::PathBuf;

/// The corpus: Algorithm 1, its Remark-1 variant, Algorithm 2, both KLO
/// baselines, and RLNC (file stem = `scenario` meta stamp).
const EXPECTED: &[&str] = &["alg1", "alg2", "klo-flood", "klo-phased", "remark1", "rlnc"];

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn load(name: &str) -> ParsedTrace {
    let path = golden_dir().join(format!("{name}.jsonl"));
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read golden {}: {e}", path.display()));
    ParsedTrace::parse_jsonl(&text)
        .unwrap_or_else(|e| panic!("golden {name} fails the strict hinet-trace/v1 parser: {e}"))
}

/// The directory contains exactly the documented corpus — no stray or
/// missing goldens.
#[test]
fn corpus_is_exactly_the_documented_set() {
    let mut found: Vec<String> = std::fs::read_dir(golden_dir())
        .expect("tests/golden must exist")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "jsonl"))
        .map(|p| p.file_stem().unwrap().to_string_lossy().into_owned())
        .collect();
    found.sort();
    assert_eq!(found, EXPECTED);
}

/// The tentpole gate: every golden's scenario, re-run live from the
/// golden's own metadata, produces a trace with an empty structured diff.
#[test]
fn goldens_match_live_reruns() {
    for name in EXPECTED {
        let golden = load(name);
        let sc = Scenario::from_meta(&golden).unwrap_or_else(|e| panic!("golden {name}: {e}"));
        let mut tracer = Tracer::new(ObsConfig::full());
        sc.run_traced(&mut tracer)
            .unwrap_or_else(|e| panic!("golden {name} scenario failed to run: {e}"));
        let live = ParsedTrace::parse_jsonl(&tracer.to_jsonl()).unwrap();
        let diff = diff_traces(&golden, &live, &DiffConfig::default());
        assert!(
            diff.downgrade.is_none(),
            "golden {name} should be comparable at event severity: {:?}",
            diff.downgrade
        );
        assert!(
            diff.is_empty(),
            "golden {name} diverged from its live re-run — if the behaviour change is \
             intentional, bless it with `./ci.sh --update-golden`:\n{}",
            diff.to_text()
        );
    }
}

/// Corpus hygiene: each golden is a complete full-mode capture whose
/// header counters match its own event stream — a truncated or hand-edited
/// artifact cannot hide in the corpus.
#[test]
fn goldens_are_complete_and_internally_consistent() {
    for name in EXPECTED {
        let golden = load(name);
        assert!(
            golden.is_complete(),
            "golden {name} must be a full-mode capture with nothing dropped \
             (mode={}, dropped={})",
            golden.mode.wire(),
            golden.dropped
        );
        assert_eq!(
            golden.recount_events(),
            golden.counters,
            "golden {name}: header counters disagree with its own event stream"
        );
        assert_eq!(
            golden.meta_get("scenario"),
            Some(*name),
            "golden {name}: file stem must match its scenario stamp"
        );
    }
}
