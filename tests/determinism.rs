//! Golden-value determinism tests.
//!
//! These pin the *exact* outputs of the runtime RNG and one small topology
//! per dynamic-graph generator under fixed seeds. Every simulation result in
//! the repo derives from these streams, so any change here silently
//! invalidates previously recorded experiment numbers — the pinned constants
//! make such a change loud instead. If you intentionally change the RNG or a
//! generator, re-pin the constants and say so in the changelog.

use hinet::graph::generators::{
    BackboneKind, EdgeMarkovianGen, ManhattanConfig, ManhattanGen, OneIntervalGen,
    RandomWaypointGen, TIntervalGen, WaypointConfig,
};
use hinet::graph::trace::TopologyProvider;
use hinet::rt::rng::{mix, stream_rng, Rng};

/// Order-sensitive fingerprint of the first `rounds` snapshots: folds every
/// edge (in canonical iteration order) and each round boundary through
/// [`mix`].
fn trace_fingerprint(gen: &mut impl TopologyProvider, rounds: usize) -> u64 {
    let mut h = 0u64;
    for r in 0..rounds {
        let g = gen.graph_at(r);
        h = mix(h, r as u64);
        for e in g.edges() {
            h = mix(h, mix(e.a.index() as u64, e.b.index() as u64));
        }
        h = mix(h, g.m() as u64);
    }
    h
}

#[test]
fn mix_golden_values() {
    assert_eq!(mix(0, 0), 16294208416658607535);
    assert_eq!(mix(1, 2), 12739255125256291016);
    assert_eq!(mix(0xdead, 0xbeef), 15042422062510784763);
}

#[test]
fn stream_rng_golden_values() {
    let mut rng = stream_rng(42, 7);
    let got: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
    assert_eq!(
        got,
        vec![
            10066196846854335129,
            7716365077747218512,
            9638858246930882768,
            17120809694554549855,
        ]
    );
}

#[test]
fn emdg_trace_pinned() {
    let mut g = EdgeMarkovianGen::new(10, 0.3, 0.2, 0.4, true, 11);
    assert_eq!(trace_fingerprint(&mut g, 4), 1006585252811332705);
}

#[test]
fn waypoint_trace_pinned() {
    let mut g = RandomWaypointGen::new(10, WaypointConfig::default(), 11);
    assert_eq!(trace_fingerprint(&mut g, 4), 8165409159853772587);
}

#[test]
fn manhattan_trace_pinned() {
    let mut g = ManhattanGen::new(10, ManhattanConfig::default(), 11);
    assert_eq!(trace_fingerprint(&mut g, 4), 9244544671609711087);
}

#[test]
fn t_interval_trace_pinned() {
    let mut g = TIntervalGen::new(10, 3, BackboneKind::Path, 2, 11);
    assert_eq!(trace_fingerprint(&mut g, 4), 16137118838028669360);
}

#[test]
fn one_interval_trace_pinned() {
    let mut g = OneIntervalGen::new(10, true, 2, 11);
    assert_eq!(trace_fingerprint(&mut g, 4), 7670319638537066078);
}

#[test]
fn fingerprints_are_seed_sensitive() {
    let fp = |seed| trace_fingerprint(&mut OneIntervalGen::new(10, true, 2, seed), 4);
    assert_ne!(fp(11), fp(12));
    assert_eq!(fp(11), fp(11));
}

/// Order-sensitive fingerprint of a recorded event stream: folds each
/// event's round and kind (by a stable ordinal) through [`mix`].
fn obs_fingerprint(tracer: &hinet::rt::obs::Tracer) -> u64 {
    use hinet::rt::obs::Event;
    let mut h = 0u64;
    for te in tracer.events() {
        let ordinal = match te.event {
            Event::RoundStart => 0u64,
            Event::TokenPush { node, token, .. } => mix(1, mix(node, token)),
            Event::HeadBroadcast { node, token, .. } => mix(2, mix(node, token)),
            Event::PhaseAdvance { phase } => mix(3, phase),
            Event::Reaffiliation { node, .. } => mix(4, node),
            Event::StabilityWindow { def, .. } => mix(5, def as u64),
            Event::RunEnd { rounds, .. } => mix(6, rounds),
            Event::FaultInjected { node, .. } => mix(7, node),
            Event::Crash { node, .. } => mix(8, node),
            Event::Recover { node } => mix(9, node),
            Event::Retransmit { node, count, .. } => mix(10, mix(node, count)),
            Event::Delayed { node, dst, .. } => mix(11, mix(node, dst)),
            Event::Duplicated { node, dst } => mix(12, mix(node, dst)),
            Event::RetransmitTimeout { node, dst, .. } => mix(13, mix(node, dst)),
            Event::StallProbe { node } => mix(14, node),
        };
        h = mix(h, mix(te.round, ordinal));
    }
    h
}

/// A seeded traced run is deterministic: two identical runs emit identical
/// event streams, and the tracer's exact counters agree with the engine's
/// own `RunReport` accounting (the acceptance contract of `hinet trace`).
#[test]
fn traced_run_event_stream_is_deterministic() {
    use hinet::cluster::generators::{HiNetConfig, HiNetGen};
    use hinet::core::params::alg1_plan;
    use hinet::core::runner::{run_algorithm, AlgorithmKind};
    use hinet::rt::obs::{ObsConfig, TraceSummary, Tracer};
    use hinet::sim::engine::RunConfig;
    use hinet::sim::token::round_robin_assignment;

    let (n, k, alpha, l, theta, seed) = (40, 4, 2, 2, 12, 11);
    let plan = alg1_plan(k, alpha, l, theta);
    let run = || {
        let mut provider = HiNetGen::new(HiNetConfig {
            n,
            num_heads: theta / 2,
            theta,
            l,
            t: plan.rounds_per_phase,
            reaffil_prob: 0.15,
            rotate_heads: true,
            noise_edges: n / 5,
            seed,
        });
        let mut tracer = Tracer::new(ObsConfig::full());
        let assignment = round_robin_assignment(n, k);
        let report = run_algorithm(
            &AlgorithmKind::HiNetPhased(plan),
            &mut provider,
            &assignment,
            RunConfig::new()
                .max_rounds(plan.total_rounds())
                .tracer(&mut tracer),
        );
        (tracer, report)
    };

    let (t1, r1) = run();
    let (t2, r2) = run();
    assert_eq!(obs_fingerprint(&t1), obs_fingerprint(&t2));
    assert_eq!(t1.len(), t2.len());
    assert_eq!(r1.rounds_executed, r2.rounds_executed);

    // Tracer totals match the engine's report exactly.
    let c = t1.counters();
    assert_eq!(c.rounds, r1.rounds_executed as u64);
    assert_eq!(c.tokens_sent, r1.metrics.tokens_sent);
    assert_eq!(c.packets_sent, r1.metrics.packets_sent);
    assert_eq!(c.tokens_by_role, r1.metrics.tokens_by_role);
    assert_eq!(c.bytes_sent, r1.total_bytes());

    // Per-phase round counts in the summary add up to the rounds executed.
    let summary = TraceSummary::from_tracer(&t1);
    let phase_sum: u64 = summary.per_phase_rounds.iter().sum();
    assert_eq!(phase_sum, r1.rounds_executed as u64);

    // And the stream survives a JSONL round-trip byte-for-byte.
    let parsed = hinet::rt::obs::ParsedTrace::parse_jsonl(&t1.to_jsonl()).unwrap();
    assert_eq!(parsed.events.len(), t1.len());
    assert_eq!(TraceSummary::from_trace(&parsed), summary);
}
