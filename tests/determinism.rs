//! Golden-value determinism tests.
//!
//! These pin the *exact* outputs of the runtime RNG and one small topology
//! per dynamic-graph generator under fixed seeds. Every simulation result in
//! the repo derives from these streams, so any change here silently
//! invalidates previously recorded experiment numbers — the pinned constants
//! make such a change loud instead. If you intentionally change the RNG or a
//! generator, re-pin the constants and say so in the changelog.

use hinet::graph::generators::{
    BackboneKind, EdgeMarkovianGen, ManhattanConfig, ManhattanGen, OneIntervalGen,
    RandomWaypointGen, TIntervalGen, WaypointConfig,
};
use hinet::graph::trace::TopologyProvider;
use hinet::rt::rng::{mix, stream_rng, Rng};

/// Order-sensitive fingerprint of the first `rounds` snapshots: folds every
/// edge (in canonical iteration order) and each round boundary through
/// [`mix`].
fn trace_fingerprint(gen: &mut impl TopologyProvider, rounds: usize) -> u64 {
    let mut h = 0u64;
    for r in 0..rounds {
        let g = gen.graph_at(r);
        h = mix(h, r as u64);
        for e in g.edges() {
            h = mix(h, mix(e.a.index() as u64, e.b.index() as u64));
        }
        h = mix(h, g.m() as u64);
    }
    h
}

#[test]
fn mix_golden_values() {
    assert_eq!(mix(0, 0), 16294208416658607535);
    assert_eq!(mix(1, 2), 12739255125256291016);
    assert_eq!(mix(0xdead, 0xbeef), 15042422062510784763);
}

#[test]
fn stream_rng_golden_values() {
    let mut rng = stream_rng(42, 7);
    let got: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
    assert_eq!(
        got,
        vec![
            10066196846854335129,
            7716365077747218512,
            9638858246930882768,
            17120809694554549855,
        ]
    );
}

#[test]
fn emdg_trace_pinned() {
    let mut g = EdgeMarkovianGen::new(10, 0.3, 0.2, 0.4, true, 11);
    assert_eq!(trace_fingerprint(&mut g, 4), 1006585252811332705);
}

#[test]
fn waypoint_trace_pinned() {
    let mut g = RandomWaypointGen::new(10, WaypointConfig::default(), 11);
    assert_eq!(trace_fingerprint(&mut g, 4), 8165409159853772587);
}

#[test]
fn manhattan_trace_pinned() {
    let mut g = ManhattanGen::new(10, ManhattanConfig::default(), 11);
    assert_eq!(trace_fingerprint(&mut g, 4), 9244544671609711087);
}

#[test]
fn t_interval_trace_pinned() {
    let mut g = TIntervalGen::new(10, 3, BackboneKind::Path, 2, 11);
    assert_eq!(trace_fingerprint(&mut g, 4), 16137118838028669360);
}

#[test]
fn one_interval_trace_pinned() {
    let mut g = OneIntervalGen::new(10, true, 2, 11);
    assert_eq!(trace_fingerprint(&mut g, 4), 7670319638537066078);
}

#[test]
fn fingerprints_are_seed_sensitive() {
    let fp = |seed| trace_fingerprint(&mut OneIntervalGen::new(10, true, 2, seed), 4);
    assert_ne!(fp(11), fp(12));
    assert_eq!(fp(11), fp(11));
}
