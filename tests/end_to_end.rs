//! End-to-end integration: every algorithm on compatible dynamics completes
//! within its proven bound, with the communication ordering the paper
//! claims, across crate boundaries (generators → hierarchy → simulator →
//! algorithms → analysis).

use hinet::cluster::ctvg::FlatProvider;
use hinet::cluster::generators::{HiNetConfig, HiNetGen};
use hinet::core::analysis::ModelParams;
use hinet::core::params::{alg1_plan, alg2_rounds_1interval, klo_plan};
use hinet::core::runner::{run_algorithm, AlgorithmKind};
use hinet::graph::generators::{BackboneKind, OneIntervalGen, TIntervalGen};
use hinet::sim::engine::RunConfig;
use hinet::sim::token::{round_robin_assignment, single_source_assignment};

fn hinet_gen(n: usize, t: usize, seed: u64) -> HiNetGen {
    HiNetGen::new(HiNetConfig {
        n,
        num_heads: n / 8,
        theta: n / 4,
        l: 2,
        t,
        reaffil_prob: 0.2,
        rotate_heads: true,
        noise_edges: n / 6,
        seed,
    })
}

#[test]
fn alg1_meets_theorem1_bound_across_sizes_and_seeds() {
    for &n in &[32usize, 64, 96] {
        for seed in 0..3u64 {
            let k = 6;
            let (alpha, l) = (2usize, 2usize);
            let theta = n / 4;
            let plan = alg1_plan(k, alpha, l, theta);
            let mut provider = hinet_gen(n, plan.rounds_per_phase, seed);
            let assignment = round_robin_assignment(n, k);
            let report = run_algorithm(
                &AlgorithmKind::HiNetPhased(plan),
                &mut provider,
                &assignment,
                RunConfig::new().validate_hierarchy(true),
            );
            assert!(report.completed(), "n={n} seed={seed}");
            assert!(
                report.completion_round.unwrap() <= plan.total_rounds(),
                "n={n} seed={seed}: {} > {}",
                report.completion_round.unwrap(),
                plan.total_rounds()
            );
        }
    }
}

#[test]
fn alg2_meets_theorem2_bound_on_volatile_hinet() {
    for &n in &[32usize, 64] {
        for seed in 0..3u64 {
            let k = 5;
            let rounds = alg2_rounds_1interval(n);
            let mut provider = hinet_gen(n, 1, seed);
            let assignment = round_robin_assignment(n, k);
            let report = run_algorithm(
                &AlgorithmKind::HiNetFullExchange { rounds },
                &mut provider,
                &assignment,
                RunConfig::default(),
            );
            assert!(report.completed(), "n={n} seed={seed}");
            assert!(report.completion_round.unwrap() <= rounds);
        }
    }
}

#[test]
fn klo_phased_completes_on_flat_t_interval_adversary() {
    let n = 60;
    let k = 6;
    let plan = klo_plan(k, 2, 2, n);
    for seed in 0..3u64 {
        let gen = TIntervalGen::new(n, plan.rounds_per_phase, BackboneKind::Path, n / 5, seed);
        let mut provider = FlatProvider::new(gen);
        let assignment = round_robin_assignment(n, k);
        let report = run_algorithm(
            &AlgorithmKind::KloPhased(plan),
            &mut provider,
            &assignment,
            RunConfig::default(),
        );
        assert!(report.completed(), "seed={seed}");
        assert!(report.completion_round.unwrap() <= plan.total_rounds());
    }
}

#[test]
fn klo_flood_completes_in_n_minus_1_on_worst_case_churn() {
    let n = 48;
    let k = 4;
    for seed in 0..3u64 {
        let gen = OneIntervalGen::new(n, true, 0, seed);
        let mut provider = FlatProvider::new(gen);
        let assignment = round_robin_assignment(n, k);
        let report = run_algorithm(
            &AlgorithmKind::KloFlood { rounds: n - 1 },
            &mut provider,
            &assignment,
            RunConfig::default(),
        );
        assert!(report.completed(), "seed={seed}");
        assert!(
            report.completion_round.unwrap() <= n - 1,
            "O'Dell–Wattenhofer bound"
        );
    }
}

#[test]
fn single_source_dissemination_works_everywhere() {
    // The 1-token-generalisation sanity case: all k tokens start at node 0.
    let n = 40;
    let k = 5;
    let assignment = single_source_assignment(n, k, 0);

    let plan = alg1_plan(k, 2, 2, n / 4);
    let mut provider = hinet_gen(n, plan.rounds_per_phase, 5);
    let alg1 = run_algorithm(
        &AlgorithmKind::HiNetPhased(plan),
        &mut provider,
        &assignment,
        RunConfig::default(),
    );
    assert!(alg1.completed());

    let mut provider = hinet_gen(n, 1, 5);
    let alg2 = run_algorithm(
        &AlgorithmKind::HiNetFullExchange { rounds: n - 1 },
        &mut provider,
        &assignment,
        RunConfig::default(),
    );
    assert!(alg2.completed());
}

#[test]
fn insufficient_phase_budget_fails_visibly() {
    // With a single phase, tokens cannot cross the whole backbone: the run
    // must report non-completion rather than a wrong success.
    let n = 64;
    let k = 6;
    let plan = hinet::core::params::PhasePlan {
        rounds_per_phase: k + 2 * 2,
        phases: 1,
    };
    let mut provider = hinet_gen(n, plan.rounds_per_phase, 9);
    let assignment = round_robin_assignment(n, k);
    let report = run_algorithm(
        &AlgorithmKind::HiNetPhased(plan),
        &mut provider,
        &assignment,
        RunConfig::default(),
    );
    assert!(
        !report.completed(),
        "one phase cannot traverse an 8-head backbone"
    );
}

#[test]
fn comm_ordering_alg2_at_most_flood_on_same_dynamics() {
    // Members broadcast at most once per affiliation in Algorithm 2 while
    // flooding broadcasts everywhere every round — on identical dynamics
    // and an identical round budget, Algorithm 2 can never send more.
    let n = 56;
    let k = 6;
    for seed in 0..3u64 {
        let assignment = round_robin_assignment(n, k);
        let mut p1 = hinet_gen(n, 1, seed);
        let alg2 = run_algorithm(
            &AlgorithmKind::HiNetFullExchange { rounds: n - 1 },
            &mut p1,
            &assignment,
            RunConfig::new().stop_on_completion(false),
        );
        let mut p2 = hinet_gen(n, 1, seed);
        let flood = run_algorithm(
            &AlgorithmKind::KloFlood { rounds: n - 1 },
            &mut p2,
            &assignment,
            RunConfig::new().stop_on_completion(false),
        );
        assert!(alg2.completed() && flood.completed());
        assert!(
            alg2.metrics.tokens_sent <= flood.metrics.tokens_sent,
            "seed={seed}: {} > {}",
            alg2.metrics.tokens_sent,
            flood.metrics.tokens_sent
        );
    }
}

#[test]
fn full_run_determinism() {
    let p = ModelParams {
        n0: 48,
        theta: 12,
        n_m: 20,
        n_r: 2,
        k: 5,
        alpha: 2,
        l: 2,
    };
    let a = hinet::analysis::scenarios::run_hinet_tl(&p, 77);
    let b = hinet::analysis::scenarios::run_hinet_tl(&p, 77);
    assert_eq!(a.run.completion_round, b.run.completion_round);
    assert_eq!(a.run.metrics.tokens_sent, b.run.metrics.tokens_sent);
    assert_eq!(a.run.metrics.packets_sent, b.run.metrics.packets_sent);
    assert_eq!(a.run.metrics.tokens_by_role, b.run.metrics.tokens_by_role);
    let c = hinet::analysis::scenarios::run_hinet_tl(&p, 78);
    assert_ne!(
        (a.run.metrics.tokens_sent, a.run.completion_round),
        (c.run.metrics.tokens_sent, c.run.completion_round),
        "different seeds should differ somewhere"
    );
}

#[test]
fn per_role_accounting_sums_to_total() {
    let n = 40;
    let k = 5;
    let plan = alg1_plan(k, 2, 2, n / 4);
    let mut provider = hinet_gen(n, plan.rounds_per_phase, 3);
    let assignment = round_robin_assignment(n, k);
    let report = run_algorithm(
        &AlgorithmKind::HiNetPhased(plan),
        &mut provider,
        &assignment,
        RunConfig::new().record_rounds(true),
    );
    let by_role: u64 = report.metrics.tokens_by_role.iter().sum();
    assert_eq!(by_role, report.metrics.tokens_sent);
    let by_round: u64 = report.metrics.rounds.iter().map(|r| r.tokens_sent).sum();
    assert_eq!(by_round, report.metrics.tokens_sent);
}
