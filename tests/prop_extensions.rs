//! Property tests for the extension substrates: d-hop clustering, LCC
//! maintenance, gateway policies, Manhattan mobility, and network coding.
//!
//! Ported to the in-tree [`hinet::rt::check`] harness; re-run a failing case
//! with the `HINET_CHECK_SEED=…` command the failure message prints.

use hinet::cluster::clustering::{
    backbone_connects_heads, cluster_with_policy, dhop_lowest_id, ClusteringKind, GatewayPolicy,
    LccMaintainer,
};
use hinet::core::netcode::gf2::{Gf2Basis, Gf2Vec};
use hinet::graph::generators::{ManhattanConfig, ManhattanGen};
use hinet::graph::graph::{Graph, GraphBuilder, NodeId};
use hinet::graph::trace::{TopologyProvider, TvgTrace};
use hinet::graph::traversal::is_connected;
use hinet::graph::verify::is_always_connected;
use hinet::rt::check::{check, CaseCtx};
use hinet::rt::rng::{Rng, Xoshiro256StarStar};

const CASES: usize = 48;

fn graph_from(n: usize, seed: u64, p: f64) -> Graph {
    let mut b = GraphBuilder::new(n);
    let mut state = seed | 1;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    for u in 0..n {
        for v in (u + 1)..n {
            if next() < p {
                b.add_edge(NodeId::from_index(u), NodeId::from_index(v));
            }
        }
    }
    b.build()
}

/// Replacement for `prop_assume!(is_connected(..))`: redraw the scalar seed
/// until the graph is connected (bounded; density 0.1..0.9 on ≤26 nodes
/// connects within a few tries).
fn connected_graph_from(c: &mut CaseCtx, n: usize, p: f64) -> Graph {
    for _ in 0..64 {
        let g = graph_from(n, c.random::<u64>(), p);
        if is_connected(&g) {
            return g;
        }
    }
    // Fall back to certainly-connected density rather than failing the case.
    graph_from(n, c.random::<u64>(), 1.0)
}

fn arb_policy(c: &mut CaseCtx) -> GatewayPolicy {
    *c.pick(&[GatewayPolicy::AllBoundary, GatewayPolicy::MinimalPairwise])
}

#[test]
fn dhop_hierarchy_valid_and_depth_bounded() {
    check("dhop_hierarchy_valid_and_depth_bounded", CASES, |c| {
        let n = c.random_range(3usize..=28);
        let seed = c.random::<u64>();
        let p = c.random_range(0.05f64..0.8);
        let d = c.random_range(1usize..=4);
        let policy = arb_policy(c);
        let g = graph_from(n, seed, p);
        let h = dhop_lowest_id(&g, d, policy);
        assert_eq!(h.validate(&g), Ok(()));
        for u in g.nodes() {
            let depth = h.depth_of(u).expect("all clustered");
            assert!(depth <= d, "node {u} at depth {depth} > d={d}");
        }
    });
}

#[test]
fn dhop_heads_shrink_with_d() {
    check("dhop_heads_shrink_with_d", CASES, |c| {
        let n = c.random_range(6usize..=28);
        let seed = c.random::<u64>();
        let p = c.random_range(0.05f64..0.6);
        let g = graph_from(n, seed, p);
        let h1 = dhop_lowest_id(&g, 1, GatewayPolicy::MinimalPairwise);
        let h3 = dhop_lowest_id(&g, 3, GatewayPolicy::MinimalPairwise);
        assert!(h3.heads().len() <= h1.heads().len());
    });
}

#[test]
fn backbone_connected_on_connected_graphs() {
    check("backbone_connected_on_connected_graphs", CASES, |c| {
        let n = c.random_range(2usize..=26);
        let p = c.random_range(0.1f64..0.9);
        let kind = *c.pick(&[
            ClusteringKind::LowestId,
            ClusteringKind::HighestDegree,
            ClusteringKind::GreedyDominating,
        ]);
        let policy = arb_policy(c);
        let g = connected_graph_from(c, n, p);
        let h = cluster_with_policy(kind, &g, policy);
        assert!(
            backbone_connects_heads(&g, &h),
            "{kind:?}/{policy:?} disconnected backbone on connected graph"
        );
    });
}

#[test]
fn minimal_policy_never_more_gateways() {
    check("minimal_policy_never_more_gateways", CASES, |c| {
        let n = c.random_range(4usize..=26);
        let seed = c.random::<u64>();
        let p = c.random_range(0.05f64..0.9);
        let kind = *c.pick(&[ClusteringKind::LowestId, ClusteringKind::HighestDegree]);
        let g = graph_from(n, seed, p);
        let all = cluster_with_policy(kind, &g, GatewayPolicy::AllBoundary);
        let min = cluster_with_policy(kind, &g, GatewayPolicy::MinimalPairwise);
        assert!(min.gateway_count() <= all.gateway_count());
        assert_eq!(min.heads(), all.heads(), "policy must not change heads");
    });
}

#[test]
fn lcc_stays_valid_across_arbitrary_snapshots() {
    check("lcc_stays_valid_across_arbitrary_snapshots", CASES, |c| {
        let n = c.random_range(4usize..=20);
        let count = c.random_range(2usize..8);
        let seeds = c.vec_of(count, |c| (c.random::<u64>(), c.random_range(0.1f64..0.8)));
        let mut m = LccMaintainer::new(GatewayPolicy::MinimalPairwise);
        for (seed, p) in seeds {
            let g = graph_from(n, seed, p);
            let h = m.step(&g);
            assert_eq!(h.validate(&g), Ok(()));
        }
    });
}

#[test]
fn manhattan_always_connected_when_patched() {
    check("manhattan_always_connected_when_patched", CASES, |c| {
        let n = c.random_range(2usize..=24);
        let streets = c.random_range(2usize..=6);
        let seed = c.random::<u64>();
        let mut g = ManhattanGen::new(
            n,
            ManhattanConfig {
                streets,
                radius: 0.3,
                speed_blocks: 0.4,
                ensure_connected: true,
            },
            seed,
        );
        let trace = TvgTrace::capture(&mut g, 12);
        assert!(is_always_connected(&trace));
    });
}

#[test]
fn manhattan_deterministic() {
    check("manhattan_deterministic", CASES, |c| {
        let n = c.random_range(2usize..=16);
        let seed = c.random::<u64>();
        let cfg = ManhattanConfig::default();
        let mut a = ManhattanGen::new(n, cfg, seed);
        let mut b = ManhattanGen::new(n, cfg, seed);
        for r in [3usize, 0, 7] {
            assert_eq!(&*a.graph_at(r), &*b.graph_at(r));
        }
    });
}

#[test]
fn gf2_insert_rank_invariants() {
    check("gf2_insert_rank_invariants", CASES, |c| {
        let k = c.random_range(1usize..=64);
        let count = c.random_range(1usize..24);
        let vectors = c.vec_of(count, |c| c.random::<u64>());
        let mut basis = Gf2Basis::new(k);
        let mut prev_rank = 0;
        for bits in vectors {
            let mut v = Gf2Vec::zero(k);
            for i in 0..k.min(64) {
                if bits & (1 << i) != 0 {
                    v.set(i);
                }
            }
            let was_zero = v.is_empty();
            let grew = basis.insert(v);
            assert!(!(was_zero && grew), "zero vector cannot grow rank");
            let rank = basis.rank();
            assert_eq!(rank, prev_rank + usize::from(grew));
            assert!(rank <= k);
            prev_rank = rank;
        }
        // Decoded tokens are a subset of span dimensionality.
        assert!(basis.decoded().len() <= basis.rank());
        if basis.is_complete() {
            assert_eq!(basis.decoded().len(), k);
        }
    });
}

#[test]
fn gf2_reinserting_span_elements_never_grows() {
    check("gf2_reinserting_span_elements_never_grows", CASES, |c| {
        let k = c.random_range(1usize..=32);
        let count = c.random_range(1usize..12);
        let vectors = c.vec_of(count, |c| c.random::<u64>());
        let seed = c.random::<u64>();
        let mut basis = Gf2Basis::new(k);
        for bits in vectors {
            let mut v = Gf2Vec::zero(k);
            for i in 0..k.min(64) {
                if bits & (1 << i) != 0 {
                    v.set(i);
                }
            }
            basis.insert(v);
        }
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        for _ in 0..8 {
            if let Some(comb) = basis.random_combination(&mut rng) {
                let mut probe = basis.clone();
                assert!(!probe.insert(comb), "span element must be dependent");
            }
        }
    });
}
