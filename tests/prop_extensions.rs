//! Property tests for the extension substrates: d-hop clustering, LCC
//! maintenance, gateway policies, Manhattan mobility, and network coding.

use hinet::cluster::clustering::{
    backbone_connects_heads, cluster_with_policy, dhop_lowest_id, ClusteringKind, GatewayPolicy,
    LccMaintainer,
};
use hinet::core::netcode::gf2::{Gf2Basis, Gf2Vec};
use hinet::graph::generators::{ManhattanConfig, ManhattanGen};
use hinet::graph::graph::{Graph, GraphBuilder, NodeId};
use hinet::graph::trace::{TopologyProvider, TvgTrace};
use hinet::graph::traversal::is_connected;
use hinet::graph::verify::is_always_connected;
use proptest::prelude::*;

fn graph_from(n: usize, seed: u64, p: f64) -> Graph {
    let mut b = GraphBuilder::new(n);
    let mut state = seed | 1;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    for u in 0..n {
        for v in (u + 1)..n {
            if next() < p {
                b.add_edge(NodeId::from_index(u), NodeId::from_index(v));
            }
        }
    }
    b.build()
}

fn arb_policy() -> impl Strategy<Value = GatewayPolicy> {
    prop_oneof![
        Just(GatewayPolicy::AllBoundary),
        Just(GatewayPolicy::MinimalPairwise),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dhop_hierarchy_valid_and_depth_bounded(
        n in 3usize..=28,
        seed in any::<u64>(),
        p in 0.05f64..0.8,
        d in 1usize..=4,
        policy in arb_policy(),
    ) {
        let g = graph_from(n, seed, p);
        let h = dhop_lowest_id(&g, d, policy);
        prop_assert_eq!(h.validate(&g), Ok(()));
        for u in g.nodes() {
            let depth = h.depth_of(u).expect("all clustered");
            prop_assert!(depth <= d, "node {} at depth {} > d={}", u, depth, d);
        }
    }

    #[test]
    fn dhop_heads_shrink_with_d(
        n in 6usize..=28,
        seed in any::<u64>(),
        p in 0.05f64..0.6,
    ) {
        let g = graph_from(n, seed, p);
        let h1 = dhop_lowest_id(&g, 1, GatewayPolicy::MinimalPairwise);
        let h3 = dhop_lowest_id(&g, 3, GatewayPolicy::MinimalPairwise);
        prop_assert!(h3.heads().len() <= h1.heads().len());
    }

    #[test]
    fn backbone_connected_on_connected_graphs(
        n in 2usize..=26,
        seed in any::<u64>(),
        p in 0.1f64..0.9,
        kind in prop_oneof![
            Just(ClusteringKind::LowestId),
            Just(ClusteringKind::HighestDegree),
            Just(ClusteringKind::GreedyDominating),
        ],
        policy in arb_policy(),
    ) {
        let g = graph_from(n, seed, p);
        prop_assume!(is_connected(&g));
        let h = cluster_with_policy(kind, &g, policy);
        prop_assert!(
            backbone_connects_heads(&g, &h),
            "{:?}/{:?} disconnected backbone on connected graph", kind, policy
        );
    }

    #[test]
    fn minimal_policy_never_more_gateways(
        n in 4usize..=26,
        seed in any::<u64>(),
        p in 0.05f64..0.9,
        kind in prop_oneof![
            Just(ClusteringKind::LowestId),
            Just(ClusteringKind::HighestDegree),
        ],
    ) {
        let g = graph_from(n, seed, p);
        let all = cluster_with_policy(kind, &g, GatewayPolicy::AllBoundary);
        let min = cluster_with_policy(kind, &g, GatewayPolicy::MinimalPairwise);
        prop_assert!(min.gateway_count() <= all.gateway_count());
        prop_assert_eq!(min.heads(), all.heads(), "policy must not change heads");
    }

    #[test]
    fn lcc_stays_valid_across_arbitrary_snapshots(
        n in 4usize..=20,
        seeds in proptest::collection::vec((any::<u64>(), 0.1f64..0.8), 2..8),
    ) {
        let mut m = LccMaintainer::new(GatewayPolicy::MinimalPairwise);
        for (seed, p) in seeds {
            let g = graph_from(n, seed, p);
            let h = m.step(&g);
            prop_assert_eq!(h.validate(&g), Ok(()));
        }
    }

    #[test]
    fn manhattan_always_connected_when_patched(
        n in 2usize..=24,
        streets in 2usize..=6,
        seed in any::<u64>(),
    ) {
        let mut g = ManhattanGen::new(
            n,
            ManhattanConfig {
                streets,
                radius: 0.3,
                speed_blocks: 0.4,
                ensure_connected: true,
            },
            seed,
        );
        let trace = TvgTrace::capture(&mut g, 12);
        prop_assert!(is_always_connected(&trace));
    }

    #[test]
    fn manhattan_deterministic(
        n in 2usize..=16,
        seed in any::<u64>(),
    ) {
        let cfg = ManhattanConfig::default();
        let mut a = ManhattanGen::new(n, cfg, seed);
        let mut b = ManhattanGen::new(n, cfg, seed);
        for r in [3usize, 0, 7] {
            prop_assert_eq!(&*a.graph_at(r), &*b.graph_at(r));
        }
    }

    #[test]
    fn gf2_insert_rank_invariants(
        k in 1usize..=64,
        vectors in proptest::collection::vec(any::<u64>(), 1..24),
    ) {
        let mut basis = Gf2Basis::new(k);
        let mut prev_rank = 0;
        for bits in vectors {
            let mut v = Gf2Vec::zero(k);
            for i in 0..k.min(64) {
                if bits & (1 << i) != 0 {
                    v.set(i);
                }
            }
            let was_zero = v.is_empty();
            let grew = basis.insert(v);
            prop_assert!(!(<bool>::from(was_zero) && grew), "zero vector cannot grow rank");
            let rank = basis.rank();
            prop_assert_eq!(rank, prev_rank + usize::from(grew));
            prop_assert!(rank <= k);
            prev_rank = rank;
        }
        // Decoded tokens are a subset of span dimensionality.
        prop_assert!(basis.decoded().len() <= basis.rank());
        if basis.is_complete() {
            prop_assert_eq!(basis.decoded().len(), k);
        }
    }

    #[test]
    fn gf2_reinserting_span_elements_never_grows(
        k in 1usize..=32,
        vectors in proptest::collection::vec(any::<u64>(), 1..12),
        seed in any::<u64>(),
    ) {
        use rand::SeedableRng;
        let mut basis = Gf2Basis::new(k);
        for bits in vectors {
            let mut v = Gf2Vec::zero(k);
            for i in 0..k.min(64) {
                if bits & (1 << i) != 0 {
                    v.set(i);
                }
            }
            basis.insert(v);
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..8 {
            if let Some(c) = basis.random_combination(&mut rng) {
                let mut probe = basis.clone();
                prop_assert!(!probe.insert(c), "span element must be dependent");
            }
        }
    }
}
