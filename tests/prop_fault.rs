//! Chaos property suite for the deterministic fault plane, on the seeded
//! `hinet_rt::check` harness (replay any failure with
//! `HINET_CHECK_SEED=<seed printed on failure>`).
//!
//! Six contracts: (a) bounded message loss plus the ARQ retransmission
//! wrapper still completes dissemination; (b) a fault plan with a seed but
//! no rates is indistinguishable from no plan at all — events and counters
//! identical, meta unchanged except for the `fault_seed` stamp; (c) a
//! faulted run replays byte-for-byte under the same `--fault-seed`;
//! (d) a partition severing the token-free side for the whole run makes
//! completion impossible and is reported as a Definition-2 assumption
//! violation; (e) a partition window entirely past the run's horizon is
//! behaviourally invisible — only its meta stamp differs; (f) head
//! targeting gates hazard crashes to current heads: at the first crash
//! round the targeted victims are a strict, non-empty subset of the
//! untargeted ones, and targeted runs replay byte-for-byte.

use hinet::rt::check::check;
use hinet::rt::obs::{Event, ObsConfig, ParsedTrace, Tracer};
use hinet::scenario::{Scenario, ScenarioReport};
use hinet::sim::engine::Outcome;
use hinet::sim::fault::Partition;
use std::collections::BTreeSet;

fn scenario(algorithm: &str, dynamics: &str, n: usize, k: usize, seed: u64) -> Scenario {
    let (alpha, l) = (2, 2);
    let t = hinet::core::params::required_phase_length(k, alpha, l);
    Scenario {
        n,
        k,
        alpha,
        l,
        theta: (n / 3).max(1),
        seed,
        algorithm: algorithm.into(),
        dynamics: dynamics.into(),
        t,
        budget: 4 * n + 4 * t,
        loss_ppm: 0,
        crash_ppm: 0,
        crash_at: vec![],
        target_heads: false,
        fault_seed: 0,
        retransmit: false,
        durable_tokens: false,
        partitions: vec![],
        down_rounds: 1,
        delay_ppm: 0,
        max_delay: 1,
        dup_ppm: 0,
        reorder: false,
        reliable: false,
        stall_rounds: 0,
        mode: hinet_sim::ExecMode::Lockstep,
    }
}

fn record(sc: &Scenario) -> (ScenarioReport, String) {
    let mut tracer = Tracer::new(ObsConfig::full());
    let report = sc.run_traced(&mut tracer).expect("scenario must run");
    (report, tracer.to_jsonl())
}

/// (a) Bounded loss + retransmission completes. Flooding-free algorithms
/// (Algorithms 1 and 2) rely on the ARQ wrapper; RLNC absorbs the same
/// loss through coding redundancy with no wrapper at all.
#[test]
fn bounded_loss_with_retransmission_still_completes() {
    check("fault_bounded_loss_completes", 12, |ctx| {
        let &algorithm = ctx.pick(&["alg1", "alg2", "rlnc"]);
        let &loss_ppm = ctx.pick(&[20_000u32, 50_000, 100_000]);
        let &seed = ctx.pick(&[1u64, 5, 9, 13]);
        let &fault_seed = ctx.pick(&[1u64, 2, 7]);
        let &n = ctx.pick(&[16usize, 20]);
        let dynamics = if algorithm == "rlnc" {
            "flat-1"
        } else {
            "hinet"
        };
        let base = scenario(algorithm, dynamics, n, 3, seed);
        let sc = Scenario {
            loss_ppm,
            fault_seed,
            retransmit: algorithm != "rlnc",
            budget: 3 * base.budget,
            ..base
        };
        let (report, _) = record(&sc);
        assert!(
            report.completed(),
            "{algorithm} at {loss_ppm} ppm (n={n}, seed={seed}, fault_seed={fault_seed}) \
             did not complete"
        );
        if let ScenarioReport::Engine(r) = &report {
            assert!(
                matches!(r.outcome, Outcome::Completed { .. }),
                "completed run must report Outcome::Completed, got: {}",
                r.outcome
            );
            // Any loss that mattered was recovered by the wrapper; losses
            // only ever *delay*, so drops and retransmits move together.
            if r.metrics.retransmits > 0 {
                assert!(
                    r.metrics.faults_injected > 0,
                    "retransmissions without any injected fault at {loss_ppm} ppm"
                );
            }
        }
    });
}

/// (b) A seeded but rate-free plan is trivial: behaviour is identical to
/// the unfaulted run — same events, same counters — and the only metadata
/// difference is the `fault_seed` stamp itself.
#[test]
fn rate_free_plans_are_indistinguishable_from_no_plan() {
    check("fault_trivial_identity", 12, |ctx| {
        let &(algorithm, dynamics) = ctx.pick(&[
            ("alg1", "hinet"),
            ("alg2", "hinet"),
            ("klo-flood", "flat-1"),
            ("rlnc", "flat-1"),
        ]);
        let &seed = ctx.pick(&[1u64, 4, 9, 16]);
        let &fault_seed = ctx.pick(&[5u64, 77, 1234]);
        let plain = scenario(algorithm, dynamics, 18, 3, seed);
        let seeded = Scenario {
            fault_seed,
            ..scenario(algorithm, dynamics, 18, 3, seed)
        };
        let (_, a) = record(&plain);
        let (_, b) = record(&seeded);
        let a = ParsedTrace::parse_jsonl(&a).expect("plain trace parses");
        let b = ParsedTrace::parse_jsonl(&b).expect("seeded trace parses");
        assert_eq!(
            a.events, b.events,
            "{algorithm} (seed={seed}): a rate-free plan changed the event stream"
        );
        assert_eq!(a.counters, b.counters, "{algorithm} (seed={seed})");
        let stamp = ("fault_seed".to_string(), fault_seed.to_string());
        assert!(
            b.meta.contains(&stamp),
            "{algorithm}: the seeded plan must stamp its fault_seed"
        );
        let without_stamp: Vec<_> = b.meta.iter().filter(|kv| **kv != stamp).cloned().collect();
        assert_eq!(
            without_stamp, a.meta,
            "{algorithm} (seed={seed}): a rate-free plan changed the metadata \
             beyond its own fault_seed stamp"
        );
    });
}

/// (c) Same fault seed → same trace, byte for byte, including crash and
/// retransmission schedules.
#[test]
fn same_fault_seed_replays_byte_for_byte() {
    check("fault_seed_replay", 12, |ctx| {
        let &(algorithm, dynamics) = ctx.pick(&[
            ("alg1", "hinet"),
            ("alg2", "hinet"),
            ("klo-flood", "flat-1"),
            ("rlnc", "flat-1"),
        ]);
        let &seed = ctx.pick(&[2u64, 6, 11]);
        let &fault_seed = ctx.pick(&[3u64, 8, 21]);
        let &loss_ppm = ctx.pick(&[30_000u32, 80_000]);
        let with_crash = *ctx.pick(&[false, true]);
        let sc = Scenario {
            loss_ppm,
            fault_seed,
            retransmit: dynamics == "hinet",
            crash_at: if with_crash { vec![(2, 1)] } else { vec![] },
            ..scenario(algorithm, dynamics, 18, 3, seed)
        };
        let (_, first) = record(&sc);
        let (_, second) = record(&sc);
        assert_eq!(
            first, second,
            "{algorithm} (seed={seed}, fault_seed={fault_seed}, loss={loss_ppm}, \
             crash={with_crash}) did not replay identically"
        );
    });
}

/// (d) Tokens start round-robin on nodes `0..k`, so a partition whose cut
/// lands in `k..n` leaves one side with no token source at all; severed
/// for the whole budget, that side can never learn anything and the run
/// must end as a Definition-2 (backbone stability) assumption violation.
#[test]
fn full_run_partitions_starve_the_cut_off_side() {
    check("fault_partition_starves", 12, |ctx| {
        let &(algorithm, dynamics) = ctx.pick(&[
            ("alg1", "hinet"),
            ("alg2", "hinet"),
            ("klo-flood", "flat-1"),
        ]);
        let &seed = ctx.pick(&[1u64, 5, 9, 13]);
        let &cut = ctx.pick(&[5usize, 9, 12]);
        let base = scenario(algorithm, dynamics, 16, 3, seed);
        let sc = Scenario {
            partitions: vec![Partition {
                start: 0,
                end: base.budget,
                cut,
            }],
            ..base
        };
        let (report, _) = record(&sc);
        assert!(
            !report.completed(),
            "{algorithm} on {dynamics} (seed={seed}, cut={cut}) completed across a \
             full-run partition"
        );
        if let ScenarioReport::Engine(r) = &report {
            assert!(
                matches!(r.outcome, Outcome::AssumptionViolated { def: 2, .. }),
                "{algorithm} (seed={seed}, cut={cut}): expected a def-2 violation, \
                 got: {}",
                r.outcome
            );
        }
    });
}

/// (e) A partition window entirely beyond the run's horizon never severs
/// anything: events and counters match the partition-free run exactly, and
/// the only metadata difference is the `partitions` stamp itself.
#[test]
fn out_of_horizon_partitions_are_behaviourally_invisible() {
    check("fault_partition_dormant", 12, |ctx| {
        let &(algorithm, dynamics) = ctx.pick(&[
            ("alg1", "hinet"),
            ("alg2", "hinet"),
            ("klo-flood", "flat-1"),
        ]);
        let &seed = ctx.pick(&[1u64, 4, 9, 16]);
        let &cut = ctx.pick(&[4usize, 11]);
        let plain = scenario(algorithm, dynamics, 16, 3, seed);
        let start = plain.budget + 1; // first severed round is past the horizon
        let dormant = Scenario {
            partitions: vec![Partition {
                start,
                end: start + 50,
                cut,
            }],
            ..plain.clone()
        };
        let (_, a) = record(&plain);
        let (_, b) = record(&dormant);
        let a = ParsedTrace::parse_jsonl(&a).expect("plain trace parses");
        let b = ParsedTrace::parse_jsonl(&b).expect("dormant trace parses");
        assert_eq!(
            a.events, b.events,
            "{algorithm} (seed={seed}): a dormant partition changed the event stream"
        );
        assert_eq!(a.counters, b.counters, "{algorithm} (seed={seed})");
        let stamp = (
            "partitions".to_string(),
            format!("{start}:{}:{cut}", start + 50),
        );
        assert!(
            b.meta.contains(&stamp),
            "{algorithm}: the partitioned run must stamp its partitions"
        );
        let without_stamp: Vec<_> = b.meta.iter().filter(|kv| **kv != stamp).cloned().collect();
        assert_eq!(
            without_stamp, a.meta,
            "{algorithm} (seed={seed}): a dormant partition changed the metadata \
             beyond its own stamp"
        );
    });
}

/// Crash victims in `trace` during `round`.
fn crash_victims(trace: &ParsedTrace, round: u64) -> BTreeSet<u64> {
    trace
        .events
        .iter()
        .filter(|te| te.round == round)
        .filter_map(|te| match te.event {
            Event::Crash { node, .. } => Some(node),
            _ => None,
        })
        .collect()
}

/// (f) `with_target_heads` gates the hazard stream on headship. At a
/// saturating hazard every node crashes in the first round of the
/// untargeted run; under targeting only the current heads do. Both runs
/// share identical state entering that round, so the targeted victim set
/// must be a strict, non-empty subset — heads are assassinated, members
/// are spared. Targeted runs also replay byte-for-byte.
#[test]
fn head_targeting_gates_hazard_crashes_to_heads() {
    check("fault_target_heads", 12, |ctx| {
        let &algorithm = ctx.pick(&["alg1", "alg2"]);
        let &seed = ctx.pick(&[1u64, 5, 9, 13]);
        let &fault_seed = ctx.pick(&[2u64, 7, 19]);
        let base = scenario(algorithm, "hinet", 18, 3, seed);
        let targeted = Scenario {
            crash_ppm: 1_000_000,
            target_heads: true,
            fault_seed,
            ..base.clone()
        };
        let untargeted = Scenario {
            crash_ppm: 1_000_000,
            target_heads: false,
            fault_seed,
            ..base
        };
        let (_, t1) = record(&targeted);
        let (_, t2) = record(&targeted);
        assert_eq!(
            t1, t2,
            "{algorithm} (seed={seed}, fault_seed={fault_seed}): targeted run did \
             not replay identically"
        );
        let t = ParsedTrace::parse_jsonl(&t1).expect("targeted trace parses");
        let u = ParsedTrace::parse_jsonl(&record(&untargeted).1).expect("untargeted trace parses");
        assert_eq!(t.meta_get("target_heads"), Some("1"));
        let first_crash_round = u
            .events
            .iter()
            .find_map(|te| matches!(te.event, Event::Crash { .. }).then_some(te.round))
            .expect("a saturating hazard must crash someone");
        let targeted_victims = crash_victims(&t, first_crash_round);
        let untargeted_victims = crash_victims(&u, first_crash_round);
        assert_eq!(
            untargeted_victims.len(),
            18,
            "{algorithm} (seed={seed}): a saturating untargeted hazard fells every node"
        );
        assert!(
            !targeted_victims.is_empty(),
            "{algorithm} (seed={seed}): some head must exist to assassinate"
        );
        assert!(
            targeted_victims.is_subset(&untargeted_victims)
                && targeted_victims.len() < untargeted_victims.len(),
            "{algorithm} (seed={seed}): targeted victims {targeted_victims:?} must be \
             a strict subset of {untargeted_victims:?}"
        );
    });
}
