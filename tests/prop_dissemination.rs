//! Property-based tests for the dissemination algorithms: completion within
//! the proven bounds, knowledge monotonicity, and cost-model consistency
//! across randomly drawn parameters.

use hinet::cluster::ctvg::FlatProvider;
use hinet::cluster::generators::{HiNetConfig, HiNetGen};
use hinet::core::analysis::{self, ModelParams};
use hinet::core::params::{alg1_plan, klo_plan};
use hinet::core::runner::{run_algorithm, AlgorithmKind};
use hinet::graph::generators::{BackboneKind, OneIntervalGen, TIntervalGen};
use hinet::sim::engine::RunConfig;
use hinet::sim::token::round_robin_assignment;
use proptest::prelude::*;

/// Parameters small enough that a proptest case simulates in microseconds.
#[derive(Clone, Copy, Debug)]
struct Params {
    n: usize,
    k: usize,
    alpha: usize,
    l: usize,
    num_heads: usize,
    seed: u64,
}

fn arb_params() -> impl Strategy<Value = Params> {
    (
        16usize..=48,
        1usize..=8,
        1usize..=3,
        1usize..=3,
        2usize..=5,
        any::<u64>(),
    )
        .prop_map(|(n, k, alpha, l, num_heads, seed)| Params {
            n: n.max(num_heads * l + 8),
            k,
            alpha,
            l,
            num_heads,
            seed,
        })
}

fn hinet_provider(p: &Params, t: usize, rotate: bool) -> HiNetGen {
    HiNetGen::new(HiNetConfig {
        n: p.n,
        num_heads: p.num_heads,
        theta: (p.num_heads * 2).min(p.n),
        l: p.l,
        t,
        reaffil_prob: 0.25,
        rotate_heads: rotate,
        noise_edges: p.n / 8,
        seed: p.seed,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn alg1_completes_within_theorem1_bound(p in arb_params()) {
        let theta = (p.num_heads * 2).min(p.n);
        let plan = alg1_plan(p.k, p.alpha, p.l, theta);
        let mut provider = hinet_provider(&p, plan.rounds_per_phase, true);
        let assignment = round_robin_assignment(p.n, p.k);
        let report = run_algorithm(
            &AlgorithmKind::HiNetPhased(plan),
            &mut provider,
            &assignment,
            RunConfig { validate_hierarchy: true, ..RunConfig::default() },
        );
        prop_assert!(report.completed(), "{p:?}");
        prop_assert!(report.completion_round.unwrap() <= plan.total_rounds(), "{p:?}");
    }

    #[test]
    fn alg2_completes_within_theorem2_bound(p in arb_params()) {
        let mut provider = hinet_provider(&p, 1, true);
        let assignment = round_robin_assignment(p.n, p.k);
        let report = run_algorithm(
            &AlgorithmKind::HiNetFullExchange { rounds: p.n - 1 },
            &mut provider,
            &assignment,
            RunConfig::default(),
        );
        prop_assert!(report.completed(), "{p:?}");
        prop_assert!(report.completion_round.unwrap() <= p.n - 1, "{p:?}");
    }

    #[test]
    fn klo_phased_completes_on_flat_adversary(p in arb_params()) {
        let plan = klo_plan(p.k, p.alpha, p.l, p.n);
        let gen = TIntervalGen::new(p.n, plan.rounds_per_phase, BackboneKind::Path, p.n / 8, p.seed);
        let mut provider = FlatProvider::new(gen);
        let assignment = round_robin_assignment(p.n, p.k);
        let report = run_algorithm(
            &AlgorithmKind::KloPhased(plan),
            &mut provider,
            &assignment,
            RunConfig::default(),
        );
        prop_assert!(report.completed(), "{p:?}");
        prop_assert!(report.completion_round.unwrap() <= plan.total_rounds(), "{p:?}");
    }

    #[test]
    fn klo_flood_completes_within_n_minus_1(p in arb_params()) {
        let gen = OneIntervalGen::new(p.n, true, p.n / 8, p.seed);
        let mut provider = FlatProvider::new(gen);
        let assignment = round_robin_assignment(p.n, p.k);
        let report = run_algorithm(
            &AlgorithmKind::KloFlood { rounds: p.n - 1 },
            &mut provider,
            &assignment,
            RunConfig::default(),
        );
        prop_assert!(report.completed(), "{p:?}");
    }

    #[test]
    fn measured_comm_never_exceeds_analytic_bound_for_klo(p in arb_params()) {
        // The baseline's analytic bound assumes every node broadcasts up to
        // k tokens per phase; the simulator can only do less.
        let plan = klo_plan(p.k, p.alpha, p.l, p.n);
        let gen = TIntervalGen::new(p.n, plan.rounds_per_phase, BackboneKind::Path, p.n / 8, p.seed);
        let mut provider = FlatProvider::new(gen);
        let assignment = round_robin_assignment(p.n, p.k);
        let report = run_algorithm(
            &AlgorithmKind::KloPhased(plan),
            &mut provider,
            &assignment,
            RunConfig { stop_on_completion: false, ..RunConfig::default() },
        );
        // Bound: phases × n × k (each node ≤ k tokens per phase).
        let bound = (plan.phases * p.n * p.k) as u64;
        prop_assert!(report.metrics.tokens_sent <= bound, "{p:?}: {} > {bound}", report.metrics.tokens_sent);
    }

    #[test]
    fn alg2_cheaper_or_equal_to_flood_same_dynamics(p in arb_params()) {
        let cfg = RunConfig { stop_on_completion: false, ..RunConfig::default() };
        let assignment = round_robin_assignment(p.n, p.k);
        let mut p1 = hinet_provider(&p, 1, true);
        let alg2 = run_algorithm(
            &AlgorithmKind::HiNetFullExchange { rounds: p.n - 1 },
            &mut p1,
            &assignment,
            cfg,
        );
        let mut p2 = hinet_provider(&p, 1, true);
        let flood = run_algorithm(
            &AlgorithmKind::KloFlood { rounds: p.n - 1 },
            &mut p2,
            &assignment,
            cfg,
        );
        prop_assert!(
            alg2.metrics.tokens_sent <= flood.metrics.tokens_sent,
            "{p:?}: alg2 {} > flood {}",
            alg2.metrics.tokens_sent,
            flood.metrics.tokens_sent
        );
    }

    #[test]
    fn analytic_model_internal_consistency(
        n0 in 10u64..1000,
        theta_frac in 1u64..=5,
        k in 1u64..100,
        alpha in 1u64..10,
        l in 1u64..6,
        n_r in 0u64..20,
    ) {
        let theta = (n0 / (theta_frac + 1)).max(1);
        let n_m = n0 / 2;
        let p = ModelParams { n0, theta, n_m, n_r, k, alpha, l };
        // Time formulas are positive and phase-plan-consistent.
        prop_assert!(analysis::hinet_tl_time(&p) > 0);
        prop_assert!(analysis::alg1_time_matches_plan(&p));
        // θ ≤ n₀ implies Algorithm 1 uses no more phases than KLO charges
        // nodes, hence less head/gateway traffic whenever n_m > 0 and
        // churn is moderate.
        if n_r == 0 && n_m > 0 {
            prop_assert!(
                analysis::hinet_1l_comm(&p) < analysis::klo_1interval_comm(&p),
                "churn-free hierarchy must beat flooding: {} vs {}",
                analysis::hinet_1l_comm(&p),
                analysis::klo_1interval_comm(&p)
            );
        }
    }

    #[test]
    fn reports_are_internally_consistent(p in arb_params()) {
        let mut provider = hinet_provider(&p, 1, false);
        let assignment = round_robin_assignment(p.n, p.k);
        let report = run_algorithm(
            &AlgorithmKind::HiNetFullExchange { rounds: p.n - 1 },
            &mut provider,
            &assignment,
            RunConfig { record_rounds: true, stop_on_completion: false, ..RunConfig::default() },
        );
        prop_assert_eq!(report.k, p.k.min(p.k));
        let by_role: u64 = report.metrics.tokens_by_role.iter().sum();
        prop_assert_eq!(by_role, report.metrics.tokens_sent);
        let by_round: u64 = report.metrics.rounds.iter().map(|r| r.tokens_sent).sum();
        prop_assert_eq!(by_round, report.metrics.tokens_sent);
        prop_assert!(report.metrics.packets_sent <= report.metrics.tokens_sent);
        if let Some(c) = report.completion_round {
            prop_assert!(c <= report.rounds_executed);
        }
    }
}
