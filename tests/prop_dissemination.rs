//! Property-based tests for the dissemination algorithms: completion within
//! the proven bounds, knowledge monotonicity, and cost-model consistency
//! across randomly drawn parameters.
//!
//! Ported to the in-tree [`hinet::rt::check`] harness; re-run a failing case
//! with the `HINET_CHECK_SEED=…` command the failure message prints.

use hinet::cluster::ctvg::FlatProvider;
use hinet::cluster::generators::{HiNetConfig, HiNetGen};
use hinet::core::analysis::{self, ModelParams};
use hinet::core::params::{alg1_plan, klo_plan};
use hinet::core::runner::{run_algorithm, AlgorithmKind};
use hinet::graph::generators::{BackboneKind, OneIntervalGen, TIntervalGen};
use hinet::rt::check::{check, CaseCtx};
use hinet::rt::rng::Rng;
use hinet::sim::engine::RunConfig;
use hinet::sim::token::round_robin_assignment;

const CASES: usize = 32;

/// Parameters small enough that a property case simulates in microseconds.
#[derive(Clone, Copy, Debug)]
struct Params {
    n: usize,
    k: usize,
    alpha: usize,
    l: usize,
    num_heads: usize,
    seed: u64,
}

fn arb_params(c: &mut CaseCtx) -> Params {
    let n = c.random_range(16usize..=48);
    let k = c.random_range(1usize..=8);
    let alpha = c.random_range(1usize..=3);
    let l = c.random_range(1usize..=3);
    let num_heads = c.random_range(2usize..=5);
    let seed = c.random::<u64>();
    Params {
        n: n.max(num_heads * l + 8),
        k,
        alpha,
        l,
        num_heads,
        seed,
    }
}

fn hinet_provider(p: &Params, t: usize, rotate: bool) -> HiNetGen {
    HiNetGen::new(HiNetConfig {
        n: p.n,
        num_heads: p.num_heads,
        theta: (p.num_heads * 2).min(p.n),
        l: p.l,
        t,
        reaffil_prob: 0.25,
        rotate_heads: rotate,
        noise_edges: p.n / 8,
        seed: p.seed,
    })
}

#[test]
fn alg1_completes_within_theorem1_bound() {
    check("alg1_completes_within_theorem1_bound", CASES, |c| {
        let p = arb_params(c);
        let theta = (p.num_heads * 2).min(p.n);
        let plan = alg1_plan(p.k, p.alpha, p.l, theta);
        let mut provider = hinet_provider(&p, plan.rounds_per_phase, true);
        let assignment = round_robin_assignment(p.n, p.k);
        let report = run_algorithm(
            &AlgorithmKind::HiNetPhased(plan),
            &mut provider,
            &assignment,
            RunConfig::new().validate_hierarchy(true),
        );
        assert!(report.completed(), "{p:?}");
        assert!(
            report.completion_round.unwrap() <= plan.total_rounds(),
            "{p:?}"
        );
    });
}

#[test]
fn alg2_completes_within_theorem2_bound() {
    check("alg2_completes_within_theorem2_bound", CASES, |c| {
        let p = arb_params(c);
        let mut provider = hinet_provider(&p, 1, true);
        let assignment = round_robin_assignment(p.n, p.k);
        let report = run_algorithm(
            &AlgorithmKind::HiNetFullExchange { rounds: p.n - 1 },
            &mut provider,
            &assignment,
            RunConfig::default(),
        );
        assert!(report.completed(), "{p:?}");
        assert!(report.completion_round.unwrap() <= p.n - 1, "{p:?}");
    });
}

#[test]
fn klo_phased_completes_on_flat_adversary() {
    check("klo_phased_completes_on_flat_adversary", CASES, |c| {
        let p = arb_params(c);
        let plan = klo_plan(p.k, p.alpha, p.l, p.n);
        let gen = TIntervalGen::new(
            p.n,
            plan.rounds_per_phase,
            BackboneKind::Path,
            p.n / 8,
            p.seed,
        );
        let mut provider = FlatProvider::new(gen);
        let assignment = round_robin_assignment(p.n, p.k);
        let report = run_algorithm(
            &AlgorithmKind::KloPhased(plan),
            &mut provider,
            &assignment,
            RunConfig::default(),
        );
        assert!(report.completed(), "{p:?}");
        assert!(
            report.completion_round.unwrap() <= plan.total_rounds(),
            "{p:?}"
        );
    });
}

#[test]
fn klo_flood_completes_within_n_minus_1() {
    check("klo_flood_completes_within_n_minus_1", CASES, |c| {
        let p = arb_params(c);
        let gen = OneIntervalGen::new(p.n, true, p.n / 8, p.seed);
        let mut provider = FlatProvider::new(gen);
        let assignment = round_robin_assignment(p.n, p.k);
        let report = run_algorithm(
            &AlgorithmKind::KloFlood { rounds: p.n - 1 },
            &mut provider,
            &assignment,
            RunConfig::default(),
        );
        assert!(report.completed(), "{p:?}");
    });
}

#[test]
fn measured_comm_never_exceeds_analytic_bound_for_klo() {
    check(
        "measured_comm_never_exceeds_analytic_bound_for_klo",
        CASES,
        |c| {
            // The baseline's analytic bound assumes every node broadcasts up to
            // k tokens per phase; the simulator can only do less.
            let p = arb_params(c);
            let plan = klo_plan(p.k, p.alpha, p.l, p.n);
            let gen = TIntervalGen::new(
                p.n,
                plan.rounds_per_phase,
                BackboneKind::Path,
                p.n / 8,
                p.seed,
            );
            let mut provider = FlatProvider::new(gen);
            let assignment = round_robin_assignment(p.n, p.k);
            let report = run_algorithm(
                &AlgorithmKind::KloPhased(plan),
                &mut provider,
                &assignment,
                RunConfig::new().stop_on_completion(false),
            );
            // Bound: phases × n × k (each node ≤ k tokens per phase).
            let bound = (plan.phases * p.n * p.k) as u64;
            assert!(
                report.metrics.tokens_sent <= bound,
                "{p:?}: {} > {bound}",
                report.metrics.tokens_sent
            );
        },
    );
}

#[test]
fn alg2_cheaper_or_equal_to_flood_same_dynamics() {
    check("alg2_cheaper_or_equal_to_flood_same_dynamics", CASES, |c| {
        let p = arb_params(c);
        let assignment = round_robin_assignment(p.n, p.k);
        let mut p1 = hinet_provider(&p, 1, true);
        let alg2 = run_algorithm(
            &AlgorithmKind::HiNetFullExchange { rounds: p.n - 1 },
            &mut p1,
            &assignment,
            RunConfig::new().stop_on_completion(false),
        );
        let mut p2 = hinet_provider(&p, 1, true);
        let flood = run_algorithm(
            &AlgorithmKind::KloFlood { rounds: p.n - 1 },
            &mut p2,
            &assignment,
            RunConfig::new().stop_on_completion(false),
        );
        assert!(
            alg2.metrics.tokens_sent <= flood.metrics.tokens_sent,
            "{p:?}: alg2 {} > flood {}",
            alg2.metrics.tokens_sent,
            flood.metrics.tokens_sent
        );
    });
}

#[test]
fn analytic_model_internal_consistency() {
    check("analytic_model_internal_consistency", CASES, |c| {
        let n0 = c.random_range(10u64..1000);
        let theta_frac = c.random_range(1u64..=5);
        let k = c.random_range(1u64..100);
        let alpha = c.random_range(1u64..10);
        let l = c.random_range(1u64..6);
        let n_r = c.random_range(0u64..20);
        let theta = (n0 / (theta_frac + 1)).max(1);
        let n_m = n0 / 2;
        let p = ModelParams {
            n0,
            theta,
            n_m,
            n_r,
            k,
            alpha,
            l,
        };
        // Time formulas are positive and phase-plan-consistent.
        assert!(analysis::hinet_tl_time(&p) > 0);
        assert!(analysis::alg1_time_matches_plan(&p));
        // θ ≤ n₀ implies Algorithm 1 uses no more phases than KLO charges
        // nodes, hence less head/gateway traffic whenever n_m > 0 and
        // churn is moderate.
        if n_r == 0 && n_m > 0 {
            assert!(
                analysis::hinet_1l_comm(&p) < analysis::klo_1interval_comm(&p),
                "churn-free hierarchy must beat flooding: {} vs {}",
                analysis::hinet_1l_comm(&p),
                analysis::klo_1interval_comm(&p)
            );
        }
    });
}

#[test]
fn reports_are_internally_consistent() {
    check("reports_are_internally_consistent", CASES, |c| {
        let p = arb_params(c);
        let mut provider = hinet_provider(&p, 1, false);
        let assignment = round_robin_assignment(p.n, p.k);
        let report = run_algorithm(
            &AlgorithmKind::HiNetFullExchange { rounds: p.n - 1 },
            &mut provider,
            &assignment,
            RunConfig::new()
                .record_rounds(true)
                .stop_on_completion(false),
        );
        assert_eq!(report.k, p.k.min(p.k));
        let by_role: u64 = report.metrics.tokens_by_role.iter().sum();
        assert_eq!(by_role, report.metrics.tokens_sent);
        let by_round: u64 = report.metrics.rounds.iter().map(|r| r.tokens_sent).sum();
        assert_eq!(by_round, report.metrics.tokens_sent);
        assert!(report.metrics.packets_sent <= report.metrics.tokens_sent);
        if let Some(cr) = report.completion_round {
            assert!(cr <= report.rounds_executed);
        }
    });
}
