//! Round-trip property suite for the scenario layer, on the seeded
//! `hinet_rt::check` harness (replay any failure with
//! `HINET_CHECK_SEED=<seed printed on failure>`).
//!
//! Two identities, exercised across every algorithm × dynamics pairing
//! and a menu of non-trivial fault plans:
//!
//! * `Scenario::from_flags → stamp_meta → from_meta` is the identity —
//!   whatever the CLI accepts, a recorded trace describes exactly;
//! * `ScenarioFile::render → parse` is the identity — whatever the
//!   fuzzer archives, a later replay loads exactly.
//!
//! Neither identity requires running a simulation, so the suite sweeps
//! the whole combination space cheaply.

use hinet::rt::check::check;
use hinet::rt::flags::{flag, parse_flags, FlagSpec};
use hinet::rt::obs::{ObsConfig, ParsedTrace, Tracer};
use hinet::scenario::{Scenario, ScenarioFile, ALGORITHMS, DYNAMICS, RETRANSMIT_ALGORITHMS};

/// The scenario subset of the CLI's `run`/`trace` flag tables.
const SCENARIO_FLAGS: &[FlagSpec] = &[
    flag("algorithm", true, ""),
    flag("dynamics", true, ""),
    flag("n", true, ""),
    flag("k", true, ""),
    flag("alpha", true, ""),
    flag("l", true, ""),
    flag("theta", true, ""),
    flag("seed", true, ""),
    flag("budget", true, ""),
    flag("loss", true, ""),
    flag("crash-rate", true, ""),
    flag("crash-at", true, ""),
    flag("partition", true, ""),
    flag("down-rounds", true, ""),
    flag("target-heads", false, ""),
    flag("fault-seed", true, ""),
    flag("retransmit", false, ""),
    flag("durable-tokens", false, ""),
    flag("delay", true, ""),
    flag("max-delay", true, ""),
    flag("dup", true, ""),
    flag("reorder", false, ""),
    flag("reliable", false, ""),
    flag("stall-rounds", true, ""),
    flag("mode", true, ""),
];

/// A named non-trivial fault plan, as extra CLI arguments.
const FAULT_COMBOS: &[(&str, &[&str])] = &[
    ("loss", &["--loss", "0.05", "--fault-seed", "7"]),
    ("hazard", &["--crash-rate", "0.01", "--fault-seed", "3"]),
    (
        "assassin",
        &[
            "--crash-rate",
            "0.02",
            "--target-heads",
            "--down-rounds",
            "3",
        ],
    ),
    ("scheduled", &["--crash-at", "2:0,5:3", "--durable-tokens"]),
    ("partition", &["--partition", "0:6:4,9:12:7"]),
    (
        "chaos",
        &[
            "--delay",
            "0.03",
            "--max-delay",
            "3",
            "--dup",
            "0.02",
            "--reorder",
            "--fault-seed",
            "5",
        ],
    ),
    (
        "reliable",
        &[
            "--loss",
            "0.05",
            "--delay",
            "0.02",
            "--max-delay",
            "2",
            "--reliable",
            "--fault-seed",
            "9",
        ],
    ),
    (
        "everything",
        &[
            "--loss",
            "0.1",
            "--crash-rate",
            "0.005",
            "--crash-at",
            "1:2",
            "--partition",
            "3:9:5",
            "--fault-seed",
            "11",
            "--down-rounds",
            "2",
            "--budget",
            "77",
        ],
    ),
];

fn scenario_from_args(args: &[String]) -> Scenario {
    let (pos, flags) = parse_flags(SCENARIO_FLAGS, args).expect("test args must parse");
    assert!(pos.is_empty());
    Scenario::from_flags(&flags).unwrap_or_else(|e| panic!("args {args:?} must validate: {e}"))
}

#[test]
fn from_flags_stamp_meta_from_meta_is_the_identity() {
    check("scenario_meta_round_trip", 16, |ctx| {
        let &algorithm = ctx.pick(ALGORITHMS);
        let &dynamics = ctx.pick(DYNAMICS);
        let &(combo, fault_args) = ctx.pick(FAULT_COMBOS);
        let &seed = ctx.pick(&[1u64, 42, 977]);
        let mut args: Vec<String> = [
            "--algorithm",
            algorithm,
            "--dynamics",
            dynamics,
            "--n",
            "14",
            "--k",
            "3",
            "--alpha",
            "2",
            "--l",
            "2",
            "--theta",
            "5",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        args.extend(["--seed".to_string(), seed.to_string()]);
        args.extend(fault_args.iter().map(|s| s.to_string()));
        // The ARQ wrapper only exists for the HiNet algorithms; everywhere
        // else the flag is (correctly) rejected, so only add it there —
        // and never alongside the generalised --reliable layer, which it
        // conflicts with.
        if RETRANSMIT_ALGORITHMS.contains(&algorithm) && !fault_args.contains(&"--reliable") {
            args.push("--retransmit".to_string());
        }
        let sc = scenario_from_args(&args);

        // Identity 1: CLI → trace metadata → scenario.
        let mut tracer = Tracer::new(ObsConfig::full());
        sc.stamp_meta(&mut tracer);
        tracer.run_end(0, true);
        let parsed = ParsedTrace::parse_jsonl(&tracer.to_jsonl()).expect("meta trace parses");
        let rebuilt = Scenario::from_meta(&parsed).expect("stamped meta must reconstruct");
        assert_eq!(
            rebuilt, sc,
            "{algorithm} on {dynamics} with the '{combo}' plan (seed={seed}): \
             from_meta(stamp_meta(sc)) differs from sc"
        );

        // Identity 2: scenario file writer → parser.
        let file = ScenarioFile::new(sc.clone());
        let reparsed = ScenarioFile::parse(&file.render())
            .unwrap_or_else(|e| panic!("rendered file must parse: {e}\n{}", file.render()));
        assert_eq!(
            reparsed.scenario, sc,
            "{algorithm} on {dynamics} with the '{combo}' plan (seed={seed}): \
             parse(render(sc)) differs from sc"
        );
        assert_eq!(reparsed.expect, None);
    });
}

/// The `expect_outcome` stamp rides the same round-trip unchanged — the
/// corpus-replay gate depends on it surviving re-serialisation exactly.
#[test]
fn expect_outcome_survives_render_parse() {
    check("scenario_expect_round_trip", 12, |ctx| {
        let &algorithm = ctx.pick(&["alg1", "alg2", "rlnc"]);
        let &expect = ctx.pick(&[
            "completed (round 6)",
            "stalled (budget exhausted)",
            "assumption-violated (def 2)",
        ]);
        let sc = scenario_from_args(&[
            "--algorithm".to_string(),
            algorithm.to_string(),
            "--n".to_string(),
            "12".to_string(),
            "--k".to_string(),
            "2".to_string(),
            "--alpha".to_string(),
            "2".to_string(),
            "--l".to_string(),
            "1".to_string(),
            "--theta".to_string(),
            "4".to_string(),
        ]);
        let file = ScenarioFile {
            scenario: sc,
            expect: Some(expect.to_string()),
        };
        let reparsed = ScenarioFile::parse(&file.render()).expect("rendered file parses");
        assert_eq!(reparsed.expect.as_deref(), Some(expect));
        assert_eq!(reparsed.scenario, file.scenario);
    });
}
