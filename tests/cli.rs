//! End-to-end tests of the `hinet` command-line binary.

use std::process::Command;

fn hinet() -> Command {
    Command::new(env!("CARGO_BIN_EXE_hinet"))
}

#[test]
fn help_prints_usage() {
    let out = hinet().arg("help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("USAGE"));
    assert!(text.contains("experiments"));
}

#[test]
fn no_args_prints_usage() {
    let out = hinet().output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8(out.stdout).unwrap().contains("USAGE"));
}

#[test]
fn unknown_command_fails() {
    let out = hinet().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8(out.stderr)
        .unwrap()
        .contains("unknown command"));
}

#[test]
fn tables_analytic_only_reproduces_table3() {
    let out = hinet()
        .args(["tables", "--analytic-only"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("180"), "KLO time");
    assert!(text.contains("4320"), "Alg1 comm");
    assert!(text.contains("50720"), "corrected row-4 comm");
}

#[test]
fn experiments_selects_by_id() {
    let out = hinet().args(["experiments", "E2"]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("E2"));
    assert!(
        !text.contains("E10 —"),
        "only the requested experiment runs"
    );
}

#[test]
fn experiments_rejects_unknown_id() {
    let out = hinet().args(["experiments", "E99"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8(out.stderr)
        .unwrap()
        .contains("unknown experiment"));
}

#[test]
fn run_alg1_completes() {
    let out = hinet()
        .args([
            "run",
            "--algorithm",
            "alg1",
            "--n",
            "40",
            "--k",
            "4",
            "--seed",
            "3",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("completed: true"), "{text}");
    assert!(text.contains("tokens sent:"));
}

#[test]
fn run_rlnc_on_manhattan_completes() {
    let out = hinet()
        .args([
            "run",
            "--algorithm",
            "rlnc",
            "--dynamics",
            "manhattan",
            "--n",
            "30",
            "--k",
            "4",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("completed: true"), "{text}");
    assert!(text.contains("coded packets"));
}

/// The adversarial delivery plane end to end: delay, duplication and
/// reordering with the reliability layer recovering every loss, the armed
/// watchdog staying quiet, and the delivery-plane counters surfacing in
/// the report.
#[test]
fn run_chaos_with_reliability_completes_and_reports_delivery_plane() {
    let out = hinet()
        .args([
            "run",
            "--algorithm",
            "klo-flood",
            "--n",
            "24",
            "--k",
            "4",
            "--seed",
            "5",
            "--mode",
            "event",
            "--loss",
            "0.05",
            "--delay",
            "0.03",
            "--max-delay",
            "3",
            "--dup",
            "0.02",
            "--reorder",
            "--reliable",
            "--stall-rounds",
            "64",
            "--fault-seed",
            "7",
            "--budget",
            "400",
        ])
        .output()
        .unwrap();
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(out.status.success(), "{text}");
    assert!(text.contains("completed: true"), "{text}");
    assert!(text.contains("delivery plane:"), "{text}");
}

#[test]
fn run_rejects_unknown_algorithm() {
    let out = hinet()
        .args(["run", "--algorithm", "magic"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8(out.stderr)
        .unwrap()
        .contains("unknown algorithm"));
}

/// The acceptance chain: `hinet run --trace` writes a `hinet-trace/v1`
/// artifact, and `hinet trace` (same scenario, live or from the file)
/// reports per-phase round counts consistent with the run report.
#[test]
fn run_trace_then_trace_summary_are_consistent() {
    let dir = std::env::temp_dir().join(format!("hinet-cli-trace-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let artifact = dir.join("run.jsonl");

    let out = hinet()
        .args([
            "run",
            "--n",
            "40",
            "--k",
            "4",
            "--seed",
            "3",
            "--trace",
            "--trace-out",
            artifact.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let run_text = String::from_utf8(out.stdout).unwrap();
    assert!(run_text.contains("trace: wrote"), "{run_text}");

    let text = std::fs::read_to_string(&artifact).unwrap();
    let first = text.lines().next().unwrap();
    assert!(first.contains("\"schema\":\"hinet-trace/v1\""), "{first}");

    // Summarising the artifact agrees with the live re-run's consistency
    // check against the engine's own report.
    let out = hinet()
        .args(["trace", "--in", artifact.to_str().unwrap(), "--summary"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let from_file = String::from_utf8(out.stdout).unwrap();
    assert!(from_file.contains("rounds per phase:"), "{from_file}");

    let out = hinet()
        .args(["trace", "--n", "40", "--k", "4", "--seed", "3", "--summary"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let live = String::from_utf8(out.stdout).unwrap();
    assert!(live.contains("consistency:"), "{live}");
    assert!(!live.contains("MISMATCH"), "{live}");
    // Same seeded scenario → identical summary block.
    let summary_of = |s: &str| {
        s.lines()
            .skip_while(|l| !l.starts_with("rounds:"))
            .take_while(|l| !l.starts_with("consistency:"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(summary_of(&from_file), summary_of(&live));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn trace_stability_reports_windows() {
    let out = hinet()
        .args([
            "trace",
            "--n",
            "30",
            "--k",
            "3",
            "--seed",
            "5",
            "--stability",
            "--summary",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("stability windows"), "{text}");
    assert!(text.contains("def8="), "{text}");
}

#[test]
fn trace_supports_rlnc_end_to_end() {
    let out = hinet()
        .args([
            "trace",
            "--algorithm",
            "rlnc",
            "--dynamics",
            "flat-1",
            "--n",
            "16",
            "--k",
            "4",
            "--seed",
            "5",
            "--summary",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("traced rlnc"), "{text}");
    assert!(text.contains("head_broadcast"), "{text}");

    // But stability verification still has no meaning for a flat coded run.
    let out = hinet()
        .args(["trace", "--algorithm", "rlnc", "--stability"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8(out.stderr).unwrap().contains("rlnc"));
}

#[test]
fn trace_rejects_bad_input_file() {
    let out = hinet()
        .args(["trace", "--in", "/nonexistent/trace.jsonl"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
}

/// The trace-diff acceptance chain: a trace diffed against itself is empty
/// (exit 0); against a run with one engine parameter changed it exits 1 and
/// names the first diverging round; `--json` emits the
/// `hinet-trace-diff/v1` document; the live re-run form reproduces the
/// artifact from its own metadata.
#[test]
fn trace_diff_detects_parameter_changes() {
    let dir = std::env::temp_dir().join(format!("hinet-cli-diff-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let a = dir.join("a.jsonl");
    let b = dir.join("b.jsonl");

    let record = |path: &std::path::Path, seed: &str| {
        let out = hinet()
            .args([
                "trace",
                "--n",
                "30",
                "--k",
                "3",
                "--seed",
                seed,
                "--out",
                path.to_str().unwrap(),
            ])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
    };
    record(&a, "3");
    record(&b, "4");

    // Identical traces: exit 0, empty report.
    let out = hinet()
        .args(["trace", "--diff", a.to_str().unwrap(), a.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    assert!(String::from_utf8(out.stdout)
        .unwrap()
        .contains("behaviourally identical"));

    // Changed seed: exit 1, first diverging round named.
    let out = hinet()
        .args(["trace", "--diff", a.to_str().unwrap(), b.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("meta.seed"), "{text}");
    assert!(text.contains("first diverging round:"), "{text}");

    // Machine-readable form carries the diff schema and divergence list.
    let out = hinet()
        .args([
            "trace",
            "--diff",
            a.to_str().unwrap(),
            b.to_str().unwrap(),
            "--json",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("hinet-trace-diff/v1"), "{text}");
    assert!(text.contains("\"equal\": false"), "{text}");

    // Live re-run form: the artifact's own metadata reproduces it.
    let out = hinet()
        .args(["trace", "--diff", a.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );

    // --update-golden refuses the two-file form.
    let out = hinet()
        .args([
            "trace",
            "--diff",
            a.to_str().unwrap(),
            b.to_str().unwrap(),
            "--update-golden",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn audit_reports_all_sections() {
    let out = hinet()
        .args([
            "audit",
            "--dynamics",
            "hinet",
            "--n",
            "30",
            "--rounds",
            "12",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    for needle in ["connectivity:", "hierarchy:", "churn:", "topology:"] {
        assert!(text.contains(needle), "missing '{needle}' in:\n{text}");
    }
    assert!(text.contains("1-interval connected: true"));
}

#[test]
fn run_rejects_unknown_flag() {
    let out = hinet().args(["run", "--frobnicate", "3"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8(out.stderr)
        .unwrap()
        .contains("unknown flag --frobnicate"));
}

#[test]
fn run_rejects_malformed_value() {
    let out = hinet().args(["run", "--n", "lots"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8(out.stderr).unwrap().contains("--n"));
}

#[test]
fn bench_list_names_all_suites() {
    let out = hinet().args(["bench", "--list"]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    for suite in ["sweep_n", "headline", "table3_simulated", "extensions"] {
        assert!(text.contains(suite), "missing '{suite}' in:\n{text}");
    }
}

#[test]
fn bench_rejects_unknown_flag() {
    let out = hinet().args(["bench", "--warmup", "3"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8(out.stderr)
        .unwrap()
        .contains("unknown flag --warmup"));
}

#[test]
fn bench_rejects_unmatched_filter() {
    let out = hinet()
        .args(["bench", "--filter", "no_such_suite"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8(out.stderr).unwrap().contains("no suite"));
}

/// A fast `hinet bench --json` run writes a parseable artifact, and the
/// `--baseline` gate fails a run against a synthetically faster baseline.
#[test]
fn bench_json_artifact_and_regression_gate() {
    use hinet::rt::bench::SuiteReport;

    let dir = std::env::temp_dir().join(format!("hinet-cli-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let out = hinet()
        .args([
            "bench",
            "--filter",
            "headline",
            "--sample-size",
            "5",
            "--budget-ms",
            "50",
            "--json",
            "--out-dir",
            dir.to_str().unwrap(),
            "--seed",
            "7",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let artifact = dir.join("BENCH_headline.json");
    let text = std::fs::read_to_string(&artifact).unwrap();
    let report = SuiteReport::from_json(&text).unwrap();
    assert_eq!(report.suite, "headline");
    assert_eq!(report.meta.seed, 7);
    assert!(!report.benchmarks.is_empty());
    for b in &report.benchmarks {
        assert!(b.stats.min_ns <= b.stats.median_ns);
        assert!(b.stats.median_ns <= b.stats.p95_ns);
    }

    // Shrink every baseline median 10x: the rerun must look regressed.
    let mut faster = report.clone();
    for b in &mut faster.benchmarks {
        b.stats.median_ns /= 10.0;
    }
    let baseline = dir.join("BENCH_headline_faster.json");
    std::fs::write(&baseline, faster.to_json()).unwrap();

    let out = hinet()
        .args([
            "bench",
            "--filter",
            "headline",
            "--sample-size",
            "5",
            "--budget-ms",
            "50",
            "--baseline",
            baseline.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8(out.stdout)
        .unwrap()
        .contains("REGRESSION"));

    // Against its own artifact (generous threshold), the gate passes.
    let out = hinet()
        .args([
            "bench",
            "--filter",
            "headline",
            "--sample-size",
            "5",
            "--budget-ms",
            "50",
            "--baseline",
            artifact.to_str().unwrap(),
            "--max-regress",
            "10000",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// Every conflicting or nonsensical scenario flag combination exits 2
/// with a usage message naming the offending flag, case by case.
#[test]
fn run_rejects_nonsense_scenario_flag_combinations() {
    let cases: &[(&[&str], &str)] = &[
        (
            &["--retransmit", "--algorithm", "rlnc"],
            "--retransmit only applies",
        ),
        (&["--target-heads"], "--target-heads"),
        (&["--durable-tokens"], "--durable-tokens"),
        (&["--crash-at", "5"], "not round:node"),
        (
            &["--crash-at", "2:1,2:1", "--n", "10"],
            "'2:1' is duplicated",
        ),
        (&["--crash-at", "1:99", "--n", "10"], "out of range"),
        (&["--crash-at", "1:x"], "crash-at node 'x'"),
        (&["--partition", "3:3:2"], "is empty"),
        (
            &["--partition", "0:5:0", "--n", "10"],
            "leaves one side empty",
        ),
        (
            &["--partition", "0:5:25", "--n", "10"],
            "leaves one side empty",
        ),
        (&["--partition", "0:5"], "not start:end:cut"),
        (&["--theta", "50", "--n", "10"], "--theta"),
        (&["--down-rounds", "0"], "--down-rounds"),
        (&["--budget", "0"], "--budget"),
        (&["--loss", "1.5"], "--loss"),
        (&["--dynamics", "teleport"], "unknown dynamics"),
        (&["--delay", "2.0"], "--delay"),
        (&["--dup", "1.5"], "--dup"),
        (&["--max-delay", "0"], "--max-delay"),
        (&["--max-delay", "3"], "add --delay"),
        (
            &["--loss", "0.05", "--reliable", "--retransmit"],
            "pick one",
        ),
        (&["--reliable"], "add --loss or --delay"),
        (&["--stall-rounds", "8"], "--mode event"),
    ];
    for (args, needle) in cases {
        let out = hinet().arg("run").args(*args).output().unwrap();
        assert_eq!(
            out.status.code(),
            Some(2),
            "run {args:?} must exit 2, stdout: {}",
            String::from_utf8_lossy(&out.stdout)
        );
        let err = String::from_utf8(out.stderr).unwrap();
        assert!(
            err.contains(needle),
            "run {args:?}: stderr must name '{needle}', got:\n{err}"
        );
    }
}

/// `--scenario FILE` loads a scenario file as the base for both `run` and
/// `trace`, other flags override the file's values, and broken files are
/// rejected with exit 2 and a line-numbered message.
#[test]
fn run_and_trace_load_scenario_files() {
    let dir = std::env::temp_dir().join(format!("hinet-cli-scenario-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("base.scenario");
    std::fs::write(
        &path,
        "schema = hinet-scenario/v1\n\
         algorithm = alg2\n\
         dynamics = hinet\n\
         n = 24\n\
         k = 3\n\
         alpha = 2\n\
         l = 2\n\
         theta = 8\n\
         seed = 11\n\
         budget = 120\n",
    )
    .unwrap();

    let out = hinet()
        .args(["run", "--scenario", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("n=24 k=3"), "{text}");
    assert!(text.contains("seed=11"), "{text}");

    // A flag on top of the file overrides just that value.
    let out = hinet()
        .args(["run", "--scenario", path.to_str().unwrap(), "--seed", "99"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("seed=99"), "{text}");
    assert!(text.contains("n=24"), "{text}");

    // `trace` accepts the same base.
    let out = hinet()
        .args(["trace", "--scenario", path.to_str().unwrap(), "--summary"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8(out.stdout)
        .unwrap()
        .contains("traced alg2"));

    // Broken file: unknown key, named with its line number.
    let bad = dir.join("bad.scenario");
    std::fs::write(&bad, "schema = hinet-scenario/v1\nwarp = 9\n").unwrap();
    let out = hinet()
        .args(["run", "--scenario", bad.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("line 2") && err.contains("warp"), "{err}");

    let _ = std::fs::remove_dir_all(&dir);
}

/// The fuzz acceptance chain: a fixed seed deterministically finds and
/// shrinks offenders; archived offenders replay to their recorded
/// classification through the CLI; conflicting fuzz flags exit 2.
#[test]
fn fuzz_is_deterministic_and_replays_its_archive() {
    let dir = std::env::temp_dir().join(format!("hinet-cli-fuzz-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let campaign = || {
        let out = hinet()
            .args([
                "fuzz",
                "--seed",
                "1",
                "--cases",
                "20",
                "--out",
                dir.to_str().unwrap(),
            ])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8(out.stdout).unwrap()
    };
    let first = campaign();
    assert!(first.contains("offender"), "{first}");
    assert!(first.contains("(new)"), "{first}");

    // Same seed, second campaign: byte-identical classification, nothing
    // re-archived.
    let second = campaign();
    assert_eq!(
        first.replace("(new)", "(already known)"),
        second,
        "a fixed fuzz seed must reproduce the campaign exactly"
    );

    // The archive replays cleanly through the CLI gate.
    let out = hinet()
        .args(["fuzz", "--replay", dir.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("0 mismatched"), "{text}");

    // Corrupt one expectation: replay exits 1 and names the file.
    let victim = std::fs::read_dir(&dir)
        .unwrap()
        .next()
        .unwrap()
        .unwrap()
        .path();
    let tampered = std::fs::read_to_string(&victim)
        .unwrap()
        .lines()
        .map(|l| {
            if l.starts_with("expect_outcome") {
                "expect_outcome = completed (round 1)".to_string()
            } else {
                l.to_string()
            }
        })
        .collect::<Vec<_>>()
        .join("\n");
    std::fs::write(&victim, tampered).unwrap();
    let out = hinet()
        .args(["fuzz", "--replay", dir.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8(out.stdout).unwrap().contains("FAIL"));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fuzz_rejects_conflicting_flags() {
    let cases: &[&[&str]] = &[
        &["fuzz", "--replay", "tests/corpus", "--cases", "5"],
        &["fuzz", "--replay", "tests/corpus", "--seed", "3"],
        &["fuzz", "--replay", "tests/corpus", "--no-archive"],
        &["fuzz", "--no-archive", "--out", "somewhere"],
        &["fuzz", "--cases", "many"],
    ];
    for args in cases {
        let out = hinet().args(*args).output().unwrap();
        assert_eq!(
            out.status.code(),
            Some(2),
            "{args:?} must exit 2, stdout: {}",
            String::from_utf8_lossy(&out.stdout)
        );
        assert!(!String::from_utf8(out.stderr).unwrap().is_empty());
    }
}

#[test]
fn export_writes_requested_experiment_dir() {
    let dir = std::env::temp_dir().join(format!("hinet-cli-export-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    // Exporting everything is slow; the CLI export runs all experiments,
    // so this test exercises the cheap path: a bogus unwritable path fails
    // cleanly, and the success path is covered by the export example. Here
    // we only verify argument plumbing with a quick "tables" sanity pair.
    let out = hinet()
        .args([
            "run",
            "--algorithm",
            "klo-flood",
            "--dynamics",
            "flat-1",
            "--n",
            "25",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let _ = std::fs::remove_dir_all(&dir);
}
