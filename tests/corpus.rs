//! Corpus replay gate: every scenario file the fuzzer has archived under
//! `tests/corpus/` must still reproduce its recorded `expect_outcome`
//! classification, byte for byte. A mismatch means a behaviour change
//! reached a previously-minimised offender — either a regression or an
//! intentional fix; if the latter, re-archive with `hinet fuzz` (delete
//! the stale file, re-run the recorded seed) and commit the new stamp.
//!
//! `ci.sh` runs the same check through the CLI (`hinet fuzz --replay
//! tests/corpus`); this test keeps `cargo test` self-contained.

use hinet::fuzz::replay_corpus;
use std::path::Path;

#[test]
fn every_archived_offender_reproduces_its_recorded_outcome() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let outcomes = replay_corpus(&dir).expect("the committed corpus must load and replay");
    assert!(
        !outcomes.is_empty(),
        "tests/corpus/ must hold at least one archived offender"
    );
    for o in &outcomes {
        assert!(
            o.ok(),
            "{}: expected '{}', got '{}' — a behaviour change reached this minimised \
             offender (see tests/corpus.rs header for the blessing workflow)",
            o.path.display(),
            o.expected,
            o.actual
        );
    }
    // The corpus exists to pin failures, not successes: offenders of both
    // recorded kinds must be represented.
    for kind in ["assumption-violated", "stalled"] {
        assert!(
            outcomes.iter().any(|o| o.expected.starts_with(kind)),
            "the corpus must retain at least one '{kind}' offender"
        );
    }
}
