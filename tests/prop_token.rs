//! Property suite for the word-packed `TokenSet`, on the seeded
//! `hinet_rt::check` harness (replay any failure with
//! `HINET_CHECK_SEED=<seed printed on failure>`).
//!
//! The packed representation replaced a `BTreeSet<TokenId>`; these
//! properties pin it to that reference model pointwise — membership,
//! length, ascending iteration order, min/max, subset, union, and the
//! word-parallel selections `max_not_in`/`min_not_in`/`max_not_in_either`
//! the algorithms run every round — at token universes up to the scale
//! target k = 10^4. A final test fingerprints the parallel round loop:
//! the engine must emit byte-identical traces regardless of thread count.

use hinet::rt::check::{check, CaseCtx};
use hinet::rt::rng::Rng;
use hinet::sim::token::{max_not_in, max_not_in_either, min_not_in, universe, TokenId, TokenSet};
use std::collections::BTreeSet;

const CASES: usize = 64;

/// A random id universe size: mostly small (where off-by-one word
/// boundaries live), sometimes the full k = 10^4 scale target.
fn arb_k(c: &mut CaseCtx) -> u64 {
    *c.pick(&[1, 2, 63, 64, 65, 127, 128, 129, 1000, 10_000])
}

/// A random set over `0..k` drawn as (packed, reference) twins.
fn arb_set(c: &mut CaseCtx, k: u64) -> (TokenSet, BTreeSet<u64>) {
    let mut packed = TokenSet::new();
    let mut reference = BTreeSet::new();
    let fill = *c.pick(&[0.0, 0.05, 0.5, 0.95, 1.0]);
    for id in 0..k {
        if c.random_bool(fill) {
            packed.insert(TokenId(id));
            reference.insert(id);
        }
    }
    (packed, reference)
}

#[test]
fn packed_set_matches_btreeset_pointwise() {
    check("packed_set_matches_btreeset_pointwise", CASES, |c| {
        let k = arb_k(c);
        let (packed, reference) = arb_set(c, k);
        assert_eq!(packed.len(), reference.len());
        assert_eq!(packed.is_empty(), reference.is_empty());
        assert_eq!(packed.min().map(|t| t.0), reference.first().copied());
        assert_eq!(packed.max().map(|t| t.0), reference.last().copied());
        // Ascending iteration order, element for element.
        let packed_ids: Vec<u64> = packed.iter().map(|t| t.0).collect();
        let reference_ids: Vec<u64> = reference.iter().copied().collect();
        assert_eq!(packed_ids, reference_ids);
        // Membership for every id in the universe (and one past it).
        for id in 0..=k {
            assert_eq!(
                packed.contains(&TokenId(id)),
                reference.contains(&id),
                "membership of {id} diverges (k={k})"
            );
        }
    });
}

#[test]
fn insert_reports_novelty_like_btreeset() {
    check("insert_reports_novelty_like_btreeset", CASES, |c| {
        let k = arb_k(c);
        let (mut packed, mut reference) = arb_set(c, k);
        for _ in 0..64 {
            let id = c.random_range(0..k);
            assert_eq!(
                packed.insert(TokenId(id)),
                reference.insert(id),
                "insert({id}) novelty diverges"
            );
            assert_eq!(packed.len(), reference.len());
        }
    });
}

#[test]
fn union_and_subset_match_btreeset() {
    check("union_and_subset_match_btreeset", CASES, |c| {
        let k = arb_k(c);
        let (mut pa, mut ra) = arb_set(c, k);
        let (pb, rb) = arb_set(c, k);
        assert_eq!(pa.is_subset(&pb), ra.is_subset(&rb));
        assert_eq!(pb.is_subset(&pa), rb.is_subset(&ra));
        pa.union_with(&pb);
        ra.extend(rb.iter().copied());
        let union_ids: Vec<u64> = pa.iter().map(|t| t.0).collect();
        let reference_ids: Vec<u64> = ra.iter().copied().collect();
        assert_eq!(union_ids, reference_ids);
        assert!(pb.is_subset(&pa), "b must be a subset of a ∪ b");
    });
}

#[test]
fn word_parallel_selections_match_btreeset() {
    check("word_parallel_selections_match_btreeset", CASES, |c| {
        let k = arb_k(c);
        let (pa, ra) = arb_set(c, k);
        let (pb, rb) = arb_set(c, k);
        let (pc, rc) = arb_set(c, k);
        assert_eq!(
            max_not_in(&pa, &pb).map(|t| t.0),
            ra.iter().rev().copied().find(|id| !rb.contains(id)),
            "max_not_in diverges (k={k})"
        );
        assert_eq!(
            min_not_in(&pa, &pb).map(|t| t.0),
            ra.iter().copied().find(|id| !rb.contains(id)),
            "min_not_in diverges (k={k})"
        );
        assert_eq!(
            max_not_in_either(&pa, &pb, &pc).map(|t| t.0),
            ra.iter()
                .rev()
                .copied()
                .find(|id| !rb.contains(id) && !rc.contains(id)),
            "max_not_in_either diverges (k={k})"
        );
    });
}

#[test]
fn universe_is_exactly_the_dense_range() {
    check("universe_is_exactly_the_dense_range", 16, |c| {
        let k = arb_k(c);
        let u = universe(k as usize);
        assert_eq!(u.len(), k as usize);
        let ids: Vec<u64> = u.iter().map(|t| t.0).collect();
        let expect: Vec<u64> = (0..k).collect();
        assert_eq!(ids, expect);
        // Every set over 0..k is a subset of the universe.
        let (p, _) = arb_set(c, k);
        assert!(p.is_subset(&u));
    });
}

#[test]
fn equality_ignores_capacity() {
    check("equality_ignores_capacity", 16, |c| {
        let k = arb_k(c);
        let (packed, _) = arb_set(c, k);
        // Rebuild through a pre-sized set: same elements, bigger capacity.
        let mut roomy = TokenSet::with_capacity(2 * k as usize + 64);
        roomy.extend(packed.iter());
        assert_eq!(packed, roomy);
        // Inserting and removing capacity-extending structure is invisible
        // to equality; only the elements count.
        let rebuilt: TokenSet = packed.iter().collect();
        assert_eq!(rebuilt, packed);
    });
}

/// The parallel round loop is an implementation detail: the same scenario
/// must emit byte-identical `hinet-trace/v1` streams whether the engine
/// runs single-threaded or split across workers.
#[test]
fn parallel_round_loop_trace_bytes_are_thread_count_invariant() {
    use hinet::cluster::generators::{HiNetConfig, HiNetGen};
    use hinet::core::runner::{run_algorithm, AlgorithmKind};
    use hinet::rt::obs::{ObsConfig, Tracer};
    use hinet::sim::engine::RunConfig;
    use hinet::sim::token::round_robin_assignment;

    let (n, k) = (120, 12);
    let run = |threads: usize| {
        let mut provider = HiNetGen::new(HiNetConfig {
            n,
            num_heads: 8,
            theta: 20,
            l: 2,
            t: 1,
            reaffil_prob: 0.2,
            rotate_heads: true,
            noise_edges: n / 5,
            seed: 7,
        });
        let mut tracer = Tracer::new(ObsConfig::full());
        let assignment = round_robin_assignment(n, k);
        run_algorithm(
            &AlgorithmKind::HiNetFullExchange { rounds: n - 1 },
            &mut provider,
            &assignment,
            RunConfig::new().threads(threads).tracer(&mut tracer),
        );
        tracer.to_jsonl()
    };
    let single = run(1);
    for threads in [2, 3, 8] {
        assert_eq!(
            single,
            run(threads),
            "trace bytes diverge at {threads} threads"
        );
    }
}
