//! Property suite for the event-driven mailbox runtime, on the seeded
//! `hinet_rt::check` harness (replay any failure with
//! `HINET_CHECK_SEED=<seed printed on failure>`).
//!
//! Five contracts: (a) an event-mode run of any engine scenario produces
//! the same dissemination result (completion round, outcome, paper
//! metrics) as the lock-step engine, across worker counts; (b) the trace
//! event stream is byte-identical between the modes — only the header
//! (the `mode` meta stamp and the runtime gauges) may differ; (c) an
//! event-mode run replays byte-for-byte under the same seeds; (d) the
//! equivalence survives the fault plane, including the crash-mid-round
//! edge case where a node restarts while its neighbours' round messages
//! are already queued; (e) a `RoundBuffer` fed any arrival permutation
//! releases the inbox in lock-step `(sender, seq)` order.

use hinet::rt::check::check;
use hinet::rt::obs::{ObsConfig, Tracer};
use hinet::scenario::Scenario;
use hinet_graph::graph::NodeId;
use hinet_sim::transport::{Envelope, EnvelopeKind, RoundBuffer};
use hinet_sim::ExecMode;

fn scenario(algorithm: &str, dynamics: &str, n: usize, k: usize, seed: u64) -> Scenario {
    let (alpha, l) = (2, 2);
    let t = hinet::core::params::required_phase_length(k, alpha, l);
    Scenario {
        n,
        k,
        alpha,
        l,
        theta: (n / 3).max(1),
        seed,
        algorithm: algorithm.into(),
        dynamics: dynamics.into(),
        t,
        budget: 4 * n + 4 * t,
        loss_ppm: 0,
        crash_ppm: 0,
        crash_at: vec![],
        target_heads: false,
        fault_seed: 0,
        retransmit: false,
        durable_tokens: false,
        partitions: vec![],
        down_rounds: 1,
        delay_ppm: 0,
        max_delay: 1,
        dup_ppm: 0,
        reorder: false,
        reliable: false,
        stall_rounds: 0,
        mode: ExecMode::Lockstep,
    }
}

/// Record a scenario's trace artifact and engine report.
fn record(sc: &Scenario) -> (hinet_sim::RunReport, String) {
    let mut tracer = Tracer::new(ObsConfig::full());
    let report = sc.run_traced(&mut tracer).expect("scenario must run");
    let report = report.engine().expect("engine scenario").clone();
    (report, tracer.to_jsonl())
}

/// Assert two reports describe the same dissemination (everything except
/// wall-clock, which is genuinely nondeterministic).
fn assert_same_result(lock: &hinet_sim::RunReport, event: &hinet_sim::RunReport) {
    assert_eq!(event.completion_round, lock.completion_round);
    assert_eq!(event.rounds_executed, lock.rounds_executed);
    assert_eq!(event.outcome, lock.outcome);
    assert_eq!(event.metrics.tokens_sent, lock.metrics.tokens_sent);
    assert_eq!(event.metrics.packets_sent, lock.metrics.packets_sent);
    assert_eq!(event.metrics.tokens_by_role, lock.metrics.tokens_by_role);
    assert_eq!(event.metrics.faults_injected, lock.metrics.faults_injected);
    assert_eq!(event.metrics.crashes, lock.metrics.crashes);
    assert_eq!(event.metrics.recoveries, lock.metrics.recoveries);
    assert_eq!(event.metrics.retransmits, lock.metrics.retransmits);
}

/// (a)+(b) Clean scenarios: same result, byte-identical event stream.
#[test]
fn event_mode_matches_lockstep_on_clean_scenarios() {
    check("event_matches_lockstep_clean", 10, |ctx| {
        let &algorithm = ctx.pick(&["alg1", "alg2", "klo-flood", "gossip", "delta"]);
        let &dynamics = ctx.pick(&["hinet", "flat-t", "flat-1"]);
        let &seed = ctx.pick(&[1u64, 42, 977]);
        let &n = ctx.pick(&[12usize, 20]);
        let sc = scenario(algorithm, dynamics, n, 3, seed);
        let (lock, lock_trace) = record(&sc);
        let (event, event_trace) = record(&Scenario {
            mode: ExecMode::Event,
            ..sc
        });
        assert_same_result(&lock, &event);
        let lock_events: Vec<&str> = lock_trace.lines().skip(1).collect();
        let event_events: Vec<&str> = event_trace.lines().skip(1).collect();
        assert_eq!(event_events, lock_events, "event stream must match");
    });
}

/// (c) Event-mode runs replay byte-for-byte: worker interleaving must
/// never leak into the artifact.
#[test]
fn event_mode_replays_byte_identically() {
    check("event_replays_identically", 8, |ctx| {
        let &algorithm = ctx.pick(&["alg2", "klo-flood", "kactive"]);
        let &seed = ctx.pick(&[3u64, 11, 29]);
        let &loss_ppm = ctx.pick(&[0u32, 50_000]);
        let sc = Scenario {
            mode: ExecMode::Event,
            loss_ppm,
            fault_seed: seed,
            ..scenario(algorithm, "hinet", 16, 3, seed)
        };
        let (_, first) = record(&sc);
        let (_, second) = record(&sc);
        assert_eq!(first, second, "same scenario, same bytes");
    });
}

/// (d) The fault plane intercepts at the transport boundary: loss,
/// scheduled crashes (including mid-flood, with queued neighbour traffic)
/// and hazard crashes all preserve the lock-step result.
#[test]
fn event_mode_matches_lockstep_under_faults() {
    check("event_matches_lockstep_faulted", 10, |ctx| {
        let &algorithm = ctx.pick(&["alg2", "klo-flood"]);
        let &seed = ctx.pick(&[1u64, 7, 19]);
        let &loss_ppm = ctx.pick(&[0u32, 30_000, 80_000]);
        let &crash_round = ctx.pick(&[1usize, 2]);
        let &crash_node = ctx.pick(&[0usize, 3, 5]);
        let &down_rounds = ctx.pick(&[1usize, 2]);
        let &durable = ctx.pick(&[false, true]);
        let sc = Scenario {
            loss_ppm,
            crash_at: vec![(crash_round, crash_node)],
            durable_tokens: durable,
            down_rounds,
            fault_seed: seed.wrapping_mul(3) + 1,
            ..scenario(algorithm, "hinet", 14, 3, seed)
        };
        let (lock, lock_trace) = record(&sc);
        let (event, event_trace) = record(&Scenario {
            mode: ExecMode::Event,
            ..sc
        });
        assert_same_result(&lock, &event);
        let lock_events: Vec<&str> = lock_trace.lines().skip(1).collect();
        let event_events: Vec<&str> = event_trace.lines().skip(1).collect();
        assert_eq!(event_events, lock_events, "faulted event stream must match");
    });
}

/// (e) Reassembly order-independence: whatever order a round's envelopes
/// arrive in, the released inbox is sorted by `(sender, seq)` — the exact
/// inbox the lock-step engine builds by iterating senders in id order.
#[test]
fn round_buffer_releases_lockstep_order_under_any_arrival_permutation() {
    check("round_buffer_permutation", 16, |ctx| {
        let &senders = ctx.pick(&[2usize, 5, 9]);
        let round = *ctx.pick(&[0usize, 3]);
        // Two payload envelopes per sender plus its end-of-round marker.
        let mut envelopes: Vec<Envelope> = (0..senders)
            .flat_map(|s| {
                let from = NodeId::from_index(s);
                [
                    Envelope {
                        round,
                        from,
                        to: NodeId::from_index(senders),
                        seq: 0,
                        kind: EnvelopeKind::Payload {
                            payload: hinet_sim::protocol::Payload::One(hinet_sim::TokenId(
                                s as u64,
                            )),
                            directed: false,
                            rid: 0,
                        },
                    },
                    Envelope {
                        round,
                        from,
                        to: NodeId::from_index(senders),
                        seq: 1,
                        kind: EnvelopeKind::Payload {
                            payload: hinet_sim::protocol::Payload::One(hinet_sim::TokenId(
                                (s + senders) as u64,
                            )),
                            directed: true,
                            rid: 0,
                        },
                    },
                    Envelope {
                        round,
                        from,
                        to: NodeId::from_index(senders),
                        seq: u32::MAX,
                        kind: EnvelopeKind::RoundDone { ack: 0 },
                    },
                ]
            })
            .collect();
        // A seeded Fisher-Yates shuffle driven by the case context.
        for i in (1..envelopes.len()).rev() {
            let j = *ctx.pick(&(0..=i).collect::<Vec<_>>());
            envelopes.swap(i, j);
        }
        let mut buf = RoundBuffer::new();
        let mut markers = 0usize;
        for env in &envelopes {
            // Quorum gating depends only on end-of-round markers received.
            assert_eq!(buf.ready(round, senders), markers == senders);
            if matches!(env.kind, EnvelopeKind::RoundDone { .. }) {
                markers += 1;
            }
            buf.push(env.clone());
        }
        assert!(buf.ready(round, senders));
        let inbox = buf.take(round);
        assert_eq!(inbox.len(), 2 * senders);
        for (i, msg) in inbox.iter().enumerate() {
            assert_eq!(msg.from, NodeId::from_index(i / 2), "sender-major order");
            let tok = msg.payload.first().expect("one-token payloads").0 as usize;
            let expected = if i % 2 == 0 { i / 2 } else { i / 2 + senders };
            assert_eq!(tok, expected, "per-sender seq order");
            assert_eq!(msg.directed, i % 2 == 1);
        }
    });
}

/// The equivalence also holds when the engine is forced to specific
/// worker counts (1 serialises everything; 4 oversubscribes the small n).
#[test]
fn event_mode_matches_lockstep_across_worker_counts() {
    use hinet_cluster::generators::{HiNetConfig, HiNetGen};
    use hinet_core::runner::{run_algorithm, AlgorithmKind};
    use hinet_sim::engine::RunConfig;
    use hinet_sim::token::round_robin_assignment;

    check("event_worker_counts", 6, |ctx| {
        let &seed = ctx.pick(&[2u64, 8, 21]);
        let &threads = ctx.pick(&[1usize, 2, 4]);
        let n = 15;
        let provider = || {
            HiNetGen::new(HiNetConfig {
                n,
                num_heads: 3,
                theta: 5,
                l: 2,
                t: 1,
                reaffil_prob: 0.1,
                rotate_heads: true,
                noise_edges: n / 5,
                seed,
            })
        };
        let kind = AlgorithmKind::HiNetFullExchange { rounds: 3 * n };
        let assignment = round_robin_assignment(n, 4);
        let lock = run_algorithm(&kind, &mut provider(), &assignment, RunConfig::new());
        let event = run_algorithm(
            &kind,
            &mut provider(),
            &assignment,
            RunConfig::new().mode(ExecMode::Event).threads(threads),
        );
        assert_same_result(&lock, &event);
        let lat = event.wall.latency.expect("event mode tracks latency");
        assert_eq!(lat.covered, lat.total, "completed run covers all tokens");
    });
}
