//! Chaos property suite for the adversarial delivery plane — delay,
//! duplication and reordering faults with the generalised ack/timeout/
//! backoff reliability layer — on the seeded `hinet_rt::check` harness
//! (replay any failure with `HINET_CHECK_SEED=<seed printed on failure>`).
//!
//! Four contracts: (a) full delivery-plane chaos (loss + delay + dup +
//! reorder) with the reliability layer still completes dissemination, in
//! both execution modes, for the HiNet algorithms, the KLO flood baseline
//! and RLNC — one recovery path for every protocol; (b) a reorder-only
//! plan cannot change the dissemination result of set-union protocols —
//! completion, metrics and events match the plain run exactly, and only
//! the plan's own `reorder` stamp distinguishes the metadata; (c) a
//! chaotic reliable run replays byte-for-byte under the same
//! `--fault-seed`, in both modes; (d) duplicates never double-count:
//! a duplication-only plan is discarded copy-for-copy at the receivers,
//! and the protocol-visible run — completion, token/packet totals, every
//! non-bookkeeping event — is identical to the clean run.

use hinet::rt::check::check;
use hinet::rt::obs::{Event, ObsConfig, ParsedTrace, Tracer};
use hinet::scenario::{Scenario, ScenarioReport};
use hinet_sim::ExecMode;

fn scenario(algorithm: &str, dynamics: &str, n: usize, k: usize, seed: u64) -> Scenario {
    let (alpha, l) = (2, 2);
    let t = hinet::core::params::required_phase_length(k, alpha, l);
    Scenario {
        n,
        k,
        alpha,
        l,
        theta: (n / 3).max(1),
        seed,
        algorithm: algorithm.into(),
        dynamics: dynamics.into(),
        t,
        budget: 4 * n + 4 * t,
        loss_ppm: 0,
        crash_ppm: 0,
        crash_at: vec![],
        target_heads: false,
        fault_seed: 0,
        retransmit: false,
        durable_tokens: false,
        partitions: vec![],
        down_rounds: 1,
        delay_ppm: 0,
        max_delay: 1,
        dup_ppm: 0,
        reorder: false,
        reliable: false,
        stall_rounds: 0,
        mode: ExecMode::Lockstep,
    }
}

fn record(sc: &Scenario) -> (ScenarioReport, String) {
    let mut tracer = Tracer::new(ObsConfig::full());
    let report = sc.run_traced(&mut tracer).expect("scenario must run");
    (report, tracer.to_jsonl())
}

/// The full adversarial plan on top of `base`: loss, delay, duplication
/// and reordering, recovered by the generalised reliability layer.
fn chaotic(base: Scenario, fault_seed: u64, mode: ExecMode) -> Scenario {
    Scenario {
        loss_ppm: 30_000,
        delay_ppm: 30_000,
        max_delay: 3,
        dup_ppm: 20_000,
        reorder: true,
        reliable: true,
        fault_seed,
        budget: 3 * base.budget,
        mode,
        ..base
    }
}

/// (a) One recovery path for every protocol: under loss + delay + dup +
/// reorder the reliability layer still completes dissemination — HiNet
/// Algorithms 1 and 2 and the KLO flood in both execution modes, RLNC
/// through its own engine.
#[test]
fn chaos_with_reliability_still_completes_everywhere() {
    check("chaos_reliable_completes", 12, |ctx| {
        let &(algorithm, dynamics) = ctx.pick(&[
            ("alg1", "hinet"),
            ("alg2", "hinet"),
            ("klo-flood", "flat-1"),
            ("rlnc", "flat-1"),
        ]);
        let &mode = if algorithm == "rlnc" {
            &ExecMode::Lockstep
        } else {
            ctx.pick(&[ExecMode::Lockstep, ExecMode::Event])
        };
        let &seed = ctx.pick(&[1u64, 5, 9, 13]);
        let &fault_seed = ctx.pick(&[2u64, 7, 19]);
        let sc = chaotic(scenario(algorithm, dynamics, 18, 3, seed), fault_seed, mode);
        let (report, _) = record(&sc);
        assert!(
            report.completed(),
            "{algorithm} on {dynamics} in {mode} (seed={seed}, fault_seed={fault_seed}) \
             did not complete under chaos with the reliability layer"
        );
    });
}

/// (b) Inbox reordering cannot change a set-union protocol: a reorder-only
/// plan completes in the same round with the same token/packet totals and
/// the same event stream, and the only metadata difference is the plan's
/// own `reorder` stamp.
#[test]
fn reorder_only_plans_preserve_the_dissemination_result() {
    check("chaos_reorder_invariant", 12, |ctx| {
        let &(algorithm, dynamics) = ctx.pick(&[
            ("alg1", "hinet"),
            ("alg2", "hinet"),
            ("klo-flood", "flat-1"),
        ]);
        let &seed = ctx.pick(&[1u64, 4, 9, 16]);
        let &fault_seed = ctx.pick(&[3u64, 8, 21]);
        let plain = scenario(algorithm, dynamics, 18, 3, seed);
        let shuffled = Scenario {
            reorder: true,
            fault_seed,
            ..plain.clone()
        };
        let (pr, a) = record(&plain);
        let (sr, b) = record(&shuffled);
        assert_eq!(
            sr.completed(),
            pr.completed(),
            "{algorithm} (seed={seed}): reordering changed completion"
        );
        let a = ParsedTrace::parse_jsonl(&a).expect("plain trace parses");
        let b = ParsedTrace::parse_jsonl(&b).expect("shuffled trace parses");
        assert_eq!(
            a.events, b.events,
            "{algorithm} (seed={seed}): a reorder-only plan changed the event stream"
        );
        assert_eq!(a.counters, b.counters, "{algorithm} (seed={seed})");
        let stamps = [
            ("reorder".to_string(), "1".to_string()),
            ("fault_seed".to_string(), fault_seed.to_string()),
        ];
        let without: Vec<_> = b
            .meta
            .iter()
            .filter(|kv| !stamps.contains(kv))
            .cloned()
            .collect();
        assert_eq!(
            without, a.meta,
            "{algorithm} (seed={seed}): a reorder-only plan changed the metadata \
             beyond its own stamps"
        );
    });
}

/// (c) Same fault seed → same trace, byte for byte, under the full chaos
/// plan with the reliability layer — including the delay release, dup
/// discard, ack and retransmission schedules — in both execution modes.
#[test]
fn chaotic_reliable_runs_replay_byte_for_byte() {
    check("chaos_seed_replay", 12, |ctx| {
        let &(algorithm, dynamics) = ctx.pick(&[
            ("alg1", "hinet"),
            ("alg2", "hinet"),
            ("klo-flood", "flat-1"),
            ("rlnc", "flat-1"),
        ]);
        let &mode = if algorithm == "rlnc" {
            &ExecMode::Lockstep
        } else {
            ctx.pick(&[ExecMode::Lockstep, ExecMode::Event])
        };
        let &seed = ctx.pick(&[2u64, 6, 11]);
        let &fault_seed = ctx.pick(&[3u64, 8, 21]);
        let sc = chaotic(scenario(algorithm, dynamics, 18, 3, seed), fault_seed, mode);
        let (_, first) = record(&sc);
        let (_, second) = record(&sc);
        assert_eq!(
            first, second,
            "{algorithm} on {dynamics} in {mode} (seed={seed}, fault_seed={fault_seed}) \
             did not replay identically"
        );
    });
}

/// (d) Duplication is pure receiver-side noise: with no other pathology
/// every injected copy is discarded exactly once, the protocol sees the
/// same inbox, and the run — completion round, token and packet totals,
/// every event except the `duplicated` bookkeeping itself — matches the
/// clean run.
#[test]
fn duplicates_never_double_count() {
    check("chaos_dup_accounting", 12, |ctx| {
        let &(algorithm, dynamics) = ctx.pick(&[
            ("alg1", "hinet"),
            ("alg2", "hinet"),
            ("klo-flood", "flat-1"),
        ]);
        let &seed = ctx.pick(&[1u64, 5, 9, 13]);
        let &fault_seed = ctx.pick(&[2u64, 7, 19]);
        let plain = scenario(algorithm, dynamics, 18, 3, seed);
        let dupped = Scenario {
            dup_ppm: 150_000,
            fault_seed,
            ..plain.clone()
        };
        let (pr, a) = record(&plain);
        let (dr, b) = record(&dupped);
        let (ScenarioReport::Engine(pe), ScenarioReport::Engine(de)) = (&pr, &dr) else {
            panic!("engine algorithms report engine runs");
        };
        assert_eq!(
            de.completion_round, pe.completion_round,
            "{algorithm} (seed={seed}): duplication changed the completion round"
        );
        assert_eq!(
            de.metrics.tokens_sent, pe.metrics.tokens_sent,
            "{algorithm} (seed={seed}): duplicated copies were billed as sends"
        );
        assert_eq!(
            de.metrics.packets_sent, pe.metrics.packets_sent,
            "{algorithm} (seed={seed}): duplicated copies were billed as packets"
        );
        assert!(
            de.metrics.duplicates_injected > 0,
            "{algorithm} (seed={seed}): a 15% dup plan must inject something"
        );
        assert_eq!(
            de.metrics.dups_discarded, de.metrics.duplicates_injected,
            "{algorithm} (seed={seed}): every delivered copy is discarded exactly once"
        );
        let a = ParsedTrace::parse_jsonl(&a).expect("plain trace parses");
        let b = ParsedTrace::parse_jsonl(&b).expect("dupped trace parses");
        let without_dups: Vec<_> = b
            .events
            .iter()
            .filter(|te| !matches!(te.event, Event::Duplicated { .. }))
            .cloned()
            .collect();
        assert_eq!(
            without_dups, a.events,
            "{algorithm} (seed={seed}): beyond the duplicated bookkeeping, the \
             event streams must match"
        );
    });
}
