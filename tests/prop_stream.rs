//! Differential test plane for the streaming stability verifier
//! (`hinet_cluster::stability::stream`), on the seeded `hinet_rt::check`
//! harness (replay any failure with `HINET_CHECK_SEED=<seed printed on
//! failure>`).
//!
//! The contract under test: a `StabilityStream` consuming a trace one
//! round at a time must agree with the batch Defs 2–8 verifiers pointwise
//! — per aligned window, per definition — and its end-of-stream
//! `max_hinet_t`/`min_hinet_l` answers must equal the batch functions,
//! across seeded CTVG generators, archived fuzz-corpus scenarios, and
//! fault-perturbed traces, under arbitrary chunk boundaries of the
//! stream.

use hinet::cluster::clustering::{re_elect, ClusteringKind, GatewayPolicy};
use hinet::cluster::ctvg::{CtvgTrace, FlatProvider, HierarchyProvider};
use hinet::cluster::generators::{ClusteredMobilityGen, HiNetConfig, HiNetGen};
use hinet::cluster::stability::stream::{StabilityStream, StreamReport, WindowVerdict};
use hinet::cluster::stability::{
    head_connectivity_in_window, head_set_stable_in_window, hierarchy_stable_in_window,
    is_head_set_forever_stable, l_hop_in_window, max_hierarchy_stability_sliding, max_hinet_t,
    min_hinet_l, trace_stability_windows,
};
use hinet::rt::check::{check, CaseCtx};
use hinet::rt::obs::{ObsConfig, Tracer};
use hinet::rt::rng::Rng;
use hinet::scenario::ScenarioFile;
use std::path::Path;
use std::sync::Arc;

const CASES: usize = 32;

/// A valid HiNet generator config (mirrors tests/prop_cluster.rs).
fn arb_hinet_config(c: &mut CaseCtx) -> HiNetConfig {
    let num_heads = c.random_range(2usize..=6);
    let l = c.random_range(1usize..=3);
    let t = c.random_range(1usize..=5);
    let reaffil_prob = c.random_range(0.0f64..=0.8);
    let rotate_heads = c.random::<bool>();
    let noise_edges = c.random_range(0usize..12);
    let seed = c.random::<u64>();
    let backbone = (num_heads - 1) * (l - 1);
    let n = (num_heads + backbone + 10).max(20);
    HiNetConfig {
        n,
        num_heads,
        theta: (num_heads * 2).min(n),
        l,
        t,
        reaffil_prob,
        rotate_heads,
        noise_edges,
        seed,
    }
}

/// Feed a captured trace into a fresh stream one round at a time and
/// collect every closed window verdict plus the end-of-stream report.
fn stream_trace(
    trace: &CtvgTrace,
    t: usize,
    l: usize,
    spectrum: bool,
) -> (Vec<WindowVerdict>, StreamReport) {
    let mut stream = StabilityStream::new(t, l);
    if spectrum {
        stream = stream.with_spectrum();
    }
    let mut verdicts = Vec::new();
    for (g, h) in trace.iter() {
        verdicts.extend(stream.push(g, h));
    }
    let (last, report) = stream.finish();
    verdicts.extend(last);
    (verdicts, report)
}

/// The streaming verdicts must equal the batch window verifiers per
/// window, per definition (the windowing contract: aligned windows
/// including a trailing partial one).
fn assert_stream_matches_batch(trace: &CtvgTrace, t: usize, l: usize) {
    let (verdicts, report) = stream_trace(trace, t, l, false);
    let len = trace.len();
    let expected_windows = len.div_ceil(t);
    assert_eq!(verdicts.len(), expected_windows, "window count at t={t}");
    for (w, v) in verdicts.iter().enumerate() {
        let start = w * t;
        let wlen = t.min(len - start);
        assert_eq!((v.start, v.len), (start, wlen));
        assert_eq!(
            v.def2,
            head_set_stable_in_window(trace, start, wlen),
            "Def 2, window [{start}, {})",
            start + wlen
        );
        assert_eq!(
            v.def4,
            hierarchy_stable_in_window(trace, start, wlen),
            "Def 4, window [{start}, {})",
            start + wlen
        );
        assert_eq!(
            v.def5,
            head_connectivity_in_window(trace, start, wlen),
            "Def 5, window [{start}, {})",
            start + wlen
        );
        assert_eq!(
            v.def6,
            l_hop_in_window(trace, start, wlen, l),
            "Def 6, window [{start}, {})",
            start + wlen
        );
        assert_eq!(v.def7, v.def5 && v.def6, "Def 7 conjunction");
        assert_eq!(v.def8, v.def4 && v.def7, "Def 8 conjunction");
    }
    // End-of-stream aggregates against their batch counterparts.
    let mut disabled = Tracer::disabled();
    assert_eq!(
        report.hinet_windows,
        trace_stability_windows(trace, t, l, &mut disabled),
        "Def-8 window count at t={t}"
    );
    assert_eq!(report.rounds, len);
    assert_eq!(report.windows, expected_windows);
    assert_eq!(
        report.min_hinet_l,
        min_hinet_l(trace, t),
        "min_hinet_l at t={t}"
    );
    assert_eq!(
        report.heads_forever_stable,
        is_head_set_forever_stable(trace)
    );
    if !trace.is_empty() {
        assert_eq!(
            report.max_sliding_hierarchy_t,
            max_hierarchy_stability_sliding(trace),
        );
    }
}

#[test]
fn streaming_matches_batch_per_window_per_definition() {
    check(
        "streaming_matches_batch_per_window_per_definition",
        CASES,
        |c| {
            let cfg = arb_hinet_config(c);
            // Lengths deliberately not tied to multiples of any t, so trailing
            // partial windows are exercised constantly.
            let rounds = c.random_range(1usize..=(3 * cfg.t + 2));
            let mut gen = HiNetGen::new(cfg);
            let trace = CtvgTrace::capture(&mut gen, rounds);
            // Every t up to past the trace length (t > len is one partial window).
            for t in 1..=(rounds + 2) {
                assert_stream_matches_batch(&trace, t, cfg.l);
            }
        },
    );
}

#[test]
fn streaming_matches_batch_on_mobility_and_flat_dynamics() {
    use hinet::graph::generators::{
        BackboneKind, OneIntervalGen, RandomWaypointGen, TIntervalGen, WaypointConfig,
    };

    check(
        "streaming_matches_batch_on_mobility_and_flat_dynamics",
        CASES,
        |c| {
            let n = c.random_range(8usize..=24);
            let seed = c.random::<u64>();
            let rounds = c.random_range(2usize..=14);
            let &family = c.pick(&["waypoint", "flat-t", "flat-1"]);
            let mut provider: Box<dyn HierarchyProvider> = match family {
                "waypoint" => Box::new(ClusteredMobilityGen::new(
                    RandomWaypointGen::new(n, WaypointConfig::default(), seed),
                    ClusteringKind::LowestId,
                    true,
                )),
                "flat-t" => Box::new(FlatProvider::new(TIntervalGen::new(
                    n,
                    c.random_range(1usize..=4),
                    BackboneKind::Path,
                    n / 5,
                    seed,
                ))),
                _ => Box::new(FlatProvider::new(OneIntervalGen::new(n, true, n / 5, seed))),
            };
            let trace = CtvgTrace::capture(provider.as_mut(), rounds);
            let t = c.random_range(1usize..=(rounds + 1));
            let l = c.random_range(1usize..=3);
            assert_stream_matches_batch(&trace, t, l);
        },
    );
}

#[test]
fn max_hinet_t_and_min_hinet_l_agree_with_batch() {
    check("max_hinet_t_and_min_hinet_l_agree_with_batch", CASES, |c| {
        let cfg = arb_hinet_config(c);
        let rounds = c.random_range(1usize..=(3 * cfg.t + 2));
        let mut gen = HiNetGen::new(cfg);
        let trace = CtvgTrace::capture(&mut gen, rounds);
        let t = c.random_range(1usize..=(rounds + 1));
        let (_, report) = stream_trace(&trace, t, cfg.l, true);
        // The spectrum answers max_hinet_t for every l in one pass.
        for l in 0..=(cfg.l + 2) {
            assert_eq!(
                report.max_hinet_t(l),
                max_hinet_t(&trace, l),
                "max_hinet_t at l={l}"
            );
        }
        assert_eq!(report.min_hinet_l, min_hinet_l(&trace, t));
    });
}

#[test]
fn chunk_boundaries_change_nothing() {
    check("chunk_boundaries_change_nothing", CASES, |c| {
        let cfg = arb_hinet_config(c);
        let rounds = c.random_range(1usize..=(3 * cfg.t + 2));
        let mut gen = HiNetGen::new(cfg);
        let trace = CtvgTrace::capture(&mut gen, rounds);
        let t = c.random_range(1usize..=(rounds + 1));

        // Reference: one round per push, verdicts emitted into a tracer.
        let mut one = StabilityStream::new(t, cfg.l).with_spectrum();
        let mut tracer_one = Tracer::new(ObsConfig::full());
        let mut verdicts_one = Vec::new();
        for (g, h) in trace.iter() {
            if let Some(v) = one.push(g, h) {
                v.emit_into(&mut tracer_one);
                verdicts_one.push(v);
            }
        }
        let (last, report_one) = one.finish();
        if let Some(v) = last {
            v.emit_into(&mut tracer_one);
            verdicts_one.push(v);
        }

        // Same trace through push_chunk with random chunk boundaries.
        let mut chunked = StabilityStream::new(t, cfg.l).with_spectrum();
        let mut tracer_chunked = Tracer::new(ObsConfig::full());
        let mut verdicts_chunked = Vec::new();
        let pairs: Vec<(&Arc<_>, &Arc<_>)> = trace.iter().collect();
        let mut at = 0usize;
        while at < pairs.len() {
            let size = c.random_range(1usize..=(pairs.len() - at));
            for v in chunked.push_chunk(pairs[at..at + size].iter().copied()) {
                v.emit_into(&mut tracer_chunked);
                verdicts_chunked.push(v);
            }
            at += size;
        }
        let (last, report_chunked) = chunked.finish();
        if let Some(v) = last {
            v.emit_into(&mut tracer_chunked);
            verdicts_chunked.push(v);
        }

        assert_eq!(verdicts_one, verdicts_chunked, "verdict sequences");
        assert_eq!(report_one, report_chunked, "end-of-stream reports");
        assert_eq!(
            tracer_one.to_jsonl(),
            tracer_chunked.to_jsonl(),
            "emitted stability_window event streams must be byte-identical"
        );
    });
}

#[test]
fn streaming_lattice_matches_fig2() {
    check("streaming_lattice_matches_fig2", CASES, |c| {
        let cfg = arb_hinet_config(c);
        let rounds = c.random_range(1usize..=(3 * cfg.t + 2));
        let mut gen = HiNetGen::new(cfg);
        let trace = CtvgTrace::capture(&mut gen, rounds);
        let t = c.random_range(1usize..=(rounds + 1));
        let (verdicts, _) = stream_trace(&trace, t, cfg.l, false);
        // Fig. 2: Def 8 ⇒ Def 4 ⇒ Defs 2,3 and Def 8 ⇒ Def 7 ⇒ Defs 5,6.
        for v in &verdicts {
            if v.def8 {
                assert!(v.def4 && v.def7);
            }
            if v.def7 {
                assert!(v.def5 && v.def6);
            }
            if v.def4 {
                assert!(v.def2 && v.def3);
            }
            // And the conjunctions are exact, not just implied.
            assert_eq!(v.def4, v.def2 && v.def3);
            assert_eq!(v.def7, v.def5 && v.def6);
            assert_eq!(v.def8, v.def4 && v.def7);
        }
    });
}

#[test]
fn fault_perturbed_traces_match_batch() {
    check("fault_perturbed_traces_match_batch", CASES, |c| {
        let cfg = arb_hinet_config(c);
        let rounds = c.random_range(2usize..=(3 * cfg.t + 2));
        let mut gen = HiNetGen::new(cfg);
        let clean = CtvgTrace::capture(&mut gen, rounds);
        // Perturb like the engine's fault plane does: random down sets,
        // re-electing whenever a crashed node heads a cluster.
        let n = clean.n();
        let hierarchies: Vec<Arc<_>> = (0..rounds)
            .map(|r| {
                let down: Vec<bool> = (0..n).map(|_| c.random_range(0u32..5) == 0).collect();
                let g = clean.graph(r);
                let h = clean.hierarchy(r);
                if (0..n).any(|i| down[i] && h.is_head(hinet::graph::graph::NodeId::from_index(i)))
                {
                    Arc::new(re_elect(g, h, &down, GatewayPolicy::default()))
                } else {
                    Arc::clone(h)
                }
            })
            .collect();
        let perturbed = CtvgTrace::new(clean.topology().clone(), hierarchies);
        let t = c.random_range(1usize..=(rounds + 1));
        assert_stream_matches_batch(&perturbed, t, cfg.l);
    });
}

/// Every archived fuzz-corpus scenario, replayed through its own dynamics
/// provider, must verify identically under both verifier families (the
/// in-repo mirror of the ci.sh divergence gate).
#[test]
fn corpus_scenarios_stream_equals_batch() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let mut checked = 0usize;
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("tests/corpus must exist")
        .map(|e| e.expect("readable corpus entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "scenario"))
        .collect();
    entries.sort();
    for path in entries {
        let sc = ScenarioFile::load(&path)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()))
            .scenario;
        let Ok(kind) = sc.kind() else {
            continue; // rlnc runs outside the round engine: no hierarchy
        };
        let mut provider = sc.provider(&kind).expect("corpus scenario provider");
        let rounds = sc.budget.clamp(1, 48);
        let trace = CtvgTrace::capture(provider.as_mut(), rounds);
        assert_stream_matches_batch(&trace, sc.t, sc.l);
        checked += 1;
    }
    assert!(
        checked > 0,
        "the corpus must exercise at least one scenario"
    );
}
