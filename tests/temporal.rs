//! Temporal-reachability integration: the foremost-journey analysis of the
//! graph layer must agree with what the simulator actually achieves —
//! full flooding of a single source is *optimal*, completing exactly at
//! the flooding makespan.

use hinet::cluster::ctvg::FlatProvider;
use hinet::core::runner::{run_algorithm, AlgorithmKind};
use hinet::graph::generators::{ManhattanConfig, ManhattanGen, OneIntervalGen};
use hinet::graph::graph::NodeId;
use hinet::graph::trace::{TraceProvider, TvgTrace};
use hinet::graph::verify::flooding_makespan;
use hinet::sim::engine::RunConfig;
use hinet::sim::token::single_source_assignment;

#[test]
fn flooding_completes_exactly_at_the_makespan() {
    let n = 30;
    for seed in 0..5u64 {
        let mut gen = OneIntervalGen::new(n, true, n / 6, seed);
        let trace = TvgTrace::capture(&mut gen, 3 * n);
        let makespan =
            flooding_makespan(&trace, NodeId(0), 0).expect("connected dynamics must deliver");

        let mut provider = FlatProvider::new(TraceProvider::new(trace));
        let assignment = single_source_assignment(n, 1, 0);
        let report = run_algorithm(
            &AlgorithmKind::KloFlood { rounds: 3 * n },
            &mut provider,
            &assignment,
            RunConfig::default(),
        );
        assert_eq!(
            report.completion_round,
            Some(makespan),
            "seed {seed}: flooding must achieve the foremost-journey bound"
        );
    }
}

#[test]
fn no_algorithm_beats_the_makespan() {
    // The makespan is a lower bound for *any* dissemination algorithm:
    // check a few against it.
    let n = 24;
    let seed = 11;
    let mut gen = OneIntervalGen::new(n, false, n / 5, seed);
    let trace = TvgTrace::capture(&mut gen, 3 * n);
    let makespan = flooding_makespan(&trace, NodeId(0), 0).unwrap();
    let assignment = single_source_assignment(n, 1, 0);

    for kind in [
        AlgorithmKind::KloFlood { rounds: 3 * n },
        AlgorithmKind::DeltaFlood { rounds: 3 * n },
        AlgorithmKind::Gossip {
            rounds: 3 * n,
            seed,
        },
        AlgorithmKind::KActiveFlood {
            activity: n,
            rounds: 3 * n,
        },
    ] {
        let mut provider = FlatProvider::new(TraceProvider::new(trace.clone()));
        let report = run_algorithm(&kind, &mut provider, &assignment, RunConfig::default());
        if let Some(c) = report.completion_round {
            assert!(
                c >= makespan,
                "{}: completed in {c} < makespan {makespan}",
                kind.label()
            );
        }
    }
}

#[test]
fn manhattan_mobility_supports_flooding() {
    let n = 40;
    let mut gen = ManhattanGen::new(
        n,
        ManhattanConfig {
            streets: 5,
            radius: 0.3,
            speed_blocks: 0.25,
            ensure_connected: true,
        },
        7,
    );
    let trace = TvgTrace::capture(&mut gen, 4 * n);
    let makespan = flooding_makespan(&trace, NodeId(0), 0).expect("patched city is connected");
    assert!(makespan < n, "connected per round ⇒ ≤ n−1 rounds");

    let mut provider = FlatProvider::new(TraceProvider::new(trace));
    let assignment = single_source_assignment(n, 3, 0);
    let report = run_algorithm(
        &AlgorithmKind::KloFlood { rounds: n - 1 },
        &mut provider,
        &assignment,
        RunConfig::default(),
    );
    assert!(report.completed());
    assert_eq!(report.completion_round, Some(makespan));
}

#[test]
fn rlnc_cannot_beat_makespan_either() {
    let n = 20;
    let seed = 3;
    let mut gen = OneIntervalGen::new(n, true, 4, seed);
    let trace = TvgTrace::capture(&mut gen, 4 * n);
    let makespan = flooding_makespan(&trace, NodeId(0), 0).unwrap();
    let assignment = single_source_assignment(n, 4, 0);
    let mut provider = TraceProvider::new(trace);
    let report = hinet::core::netcode::run_rlnc(
        &mut provider,
        &assignment,
        seed,
        hinet::sim::engine::RunConfig::new().max_rounds(4 * n),
    );
    assert!(report.completed());
    assert!(report.completion_round.unwrap() >= makespan);
}
