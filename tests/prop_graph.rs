//! Property-based tests for the graph substrate.

use hinet::graph::graph::{Graph, GraphBuilder, NodeId};
use hinet::graph::spanning::{bfs_spanning_tree, random_attachment_tree};
use hinet::graph::trace::TvgTrace;
use hinet::graph::traversal::{bfs_distances, components, is_connected, shortest_path};
use hinet::graph::verify::{is_t_interval_connected, max_interval_connectivity};
use hinet::graph::CsrGraph;
use proptest::prelude::*;
use std::sync::Arc;

/// Build a pseudo-random graph on `n` nodes from `(seed, p)` — proptest
/// shrinks over the scalar inputs rather than edge lists.
fn graph_from(n: usize, seed: u64, p: f64) -> Graph {
    let mut b = GraphBuilder::new(n);
    let mut state = seed | 1;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    for u in 0..n {
        for v in (u + 1)..n {
            if next() < p {
                b.add_edge(NodeId::from_index(u), NodeId::from_index(v));
            }
        }
    }
    b.build()
}

/// Strategy: one random graph on 2..=24 nodes.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..=24, any::<u64>(), 0.05f64..0.9).prop_map(|(n, seed, p)| graph_from(n, seed, p))
}

/// Strategy: `count` random graphs over a *shared* node set.
fn arb_graphs(count: usize) -> impl Strategy<Value = Vec<Graph>> {
    (
        2usize..=24,
        proptest::collection::vec((any::<u64>(), 0.05f64..0.9), count),
    )
        .prop_map(|(n, params)| {
            params
                .into_iter()
                .map(|(seed, p)| graph_from(n, seed, p))
                .collect()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn intersection_is_subgraph_of_both(gs in arb_graphs(2)) {
        let (g1, g2) = (&gs[0], &gs[1]);
        let i = g1.intersect(g2);
        prop_assert!(g1.contains_subgraph(&i));
        prop_assert!(g2.contains_subgraph(&i));
        prop_assert!(i.m() <= g1.m().min(g2.m()));
    }

    #[test]
    fn union_contains_both(gs in arb_graphs(2)) {
        let (g1, g2) = (&gs[0], &gs[1]);
        let u = g1.union(g2);
        prop_assert!(u.contains_subgraph(g1));
        prop_assert!(u.contains_subgraph(g2));
        prop_assert!(u.m() <= g1.m() + g2.m());
        prop_assert!(u.m() >= g1.m().max(g2.m()));
    }

    #[test]
    fn intersect_union_idempotent_and_commutative(gs in arb_graphs(2)) {
        let (g1, g2) = (&gs[0], &gs[1]);
        prop_assert_eq!(g1.intersect(g2), g2.intersect(g1));
        prop_assert_eq!(g1.union(g2), g2.union(g1));
        prop_assert_eq!(g1.intersect(g1), g1.clone());
        prop_assert_eq!(g1.union(g1), g1.clone());
    }

    #[test]
    fn csr_bfs_agrees_with_adjacency_bfs(g in arb_graph()) {
        let csr = CsrGraph::from(&g);
        for src in 0..g.n().min(4) {
            let a = bfs_distances(&g, NodeId::from_index(src));
            let b = csr.bfs(NodeId::from_index(src));
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn bfs_distances_are_metric_on_edges(g in arb_graph()) {
        // Adjacent nodes differ by at most 1 in distance from any source.
        let d = bfs_distances(&g, NodeId(0));
        for e in g.edges() {
            let (da, db) = (d[e.a.index()], d[e.b.index()]);
            if da != u32::MAX && db != u32::MAX {
                prop_assert!(da.abs_diff(db) <= 1);
            } else {
                prop_assert_eq!(da, db, "reachability must agree across an edge");
            }
        }
    }

    #[test]
    fn shortest_path_length_matches_bfs(g in arb_graph()) {
        let d = bfs_distances(&g, NodeId(0));
        for t in 1..g.n() {
            let target = NodeId::from_index(t);
            match shortest_path(&g, NodeId(0), target) {
                Some(p) => {
                    prop_assert_eq!(p.len() as u32 - 1, d[t]);
                    for w in p.windows(2) {
                        prop_assert!(g.has_edge(w[0], w[1]));
                    }
                }
                None => prop_assert_eq!(d[t], u32::MAX),
            }
        }
    }

    #[test]
    fn components_partition_reachability(g in arb_graph()) {
        let labels = components(&g);
        let d = bfs_distances(&g, NodeId(0));
        for v in 0..g.n() {
            prop_assert_eq!(
                labels[v] == labels[0],
                d[v] != u32::MAX,
                "node {} reachability vs component label", v
            );
        }
    }

    #[test]
    fn spanning_tree_exists_iff_connected(g in arb_graph()) {
        let tree = bfs_spanning_tree(&g);
        prop_assert_eq!(tree.is_some(), is_connected(&g));
        if let Some(t) = tree {
            prop_assert_eq!(t.m(), g.n() - 1);
            prop_assert!(is_connected(&t));
            prop_assert!(g.contains_subgraph(&t));
        }
    }

    #[test]
    fn attachment_tree_always_spanning(n in 1usize..40, seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let t = random_attachment_tree(n, &mut rng);
        prop_assert_eq!(t.m(), n.saturating_sub(1));
        prop_assert!(is_connected(&t));
    }

    #[test]
    fn t_interval_connectivity_downward_closed(graphs in arb_graphs(4)) {
        let trace = TvgTrace::new(graphs.into_iter().map(Arc::new).collect());
        if let Some(max_t) = max_interval_connectivity(&trace) {
            for t in 1..=max_t {
                prop_assert!(is_t_interval_connected(&trace, t), "t={}", t);
            }
            if max_t < trace.len() {
                prop_assert!(!is_t_interval_connected(&trace, max_t + 1));
            }
        } else {
            prop_assert!(!is_t_interval_connected(&trace, 1));
        }
    }

    #[test]
    fn edge_distance_is_a_metric(gs in arb_graphs(3)) {
        let (g1, g2, g3) = (&gs[0], &gs[1], &gs[2]);
        prop_assert_eq!(g1.edge_distance(g2), g2.edge_distance(g1));
        prop_assert_eq!(g1.edge_distance(g1), 0);
        // Triangle inequality on the symmetric-difference metric.
        prop_assert!(g1.edge_distance(g3) <= g1.edge_distance(g2) + g2.edge_distance(g3));
    }
}
