//! Property-based tests for the graph substrate.
//!
//! Ported to the in-tree [`hinet::rt::check`] harness: each property runs a
//! fixed number of seeded random cases; a failure prints the case seed and a
//! `HINET_CHECK_SEED=…` command line that replays exactly that case.

use hinet::graph::graph::{Graph, GraphBuilder, NodeId};
use hinet::graph::spanning::{bfs_spanning_tree, random_attachment_tree};
use hinet::graph::trace::TvgTrace;
use hinet::graph::traversal::{bfs_distances, components, is_connected, shortest_path};
use hinet::graph::verify::{is_t_interval_connected, max_interval_connectivity};
use hinet::graph::CsrGraph;
use hinet::rt::check::{check, CaseCtx};
use hinet::rt::rng::{Rng, Xoshiro256StarStar};
use std::sync::Arc;

const CASES: usize = 64;

/// Build a pseudo-random graph on `n` nodes from `(seed, p)` — properties
/// draw over the scalar inputs rather than edge lists, so a failing case is
/// fully described by three numbers.
fn graph_from(n: usize, seed: u64, p: f64) -> Graph {
    let mut b = GraphBuilder::new(n);
    let mut state = seed | 1;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    for u in 0..n {
        for v in (u + 1)..n {
            if next() < p {
                b.add_edge(NodeId::from_index(u), NodeId::from_index(v));
            }
        }
    }
    b.build()
}

/// One random graph on 2..=24 nodes.
fn arb_graph(c: &mut CaseCtx) -> Graph {
    let n = c.random_range(2usize..=24);
    let seed = c.random::<u64>();
    let p = c.random_range(0.05f64..0.9);
    graph_from(n, seed, p)
}

/// `count` random graphs over a *shared* node set.
fn arb_graphs(c: &mut CaseCtx, count: usize) -> Vec<Graph> {
    let n = c.random_range(2usize..=24);
    (0..count)
        .map(|_| {
            let seed = c.random::<u64>();
            let p = c.random_range(0.05f64..0.9);
            graph_from(n, seed, p)
        })
        .collect()
}

#[test]
fn intersection_is_subgraph_of_both() {
    check("intersection_is_subgraph_of_both", CASES, |c| {
        let gs = arb_graphs(c, 2);
        let (g1, g2) = (&gs[0], &gs[1]);
        let i = g1.intersect(g2);
        assert!(g1.contains_subgraph(&i));
        assert!(g2.contains_subgraph(&i));
        assert!(i.m() <= g1.m().min(g2.m()));
    });
}

#[test]
fn union_contains_both() {
    check("union_contains_both", CASES, |c| {
        let gs = arb_graphs(c, 2);
        let (g1, g2) = (&gs[0], &gs[1]);
        let u = g1.union(g2);
        assert!(u.contains_subgraph(g1));
        assert!(u.contains_subgraph(g2));
        assert!(u.m() <= g1.m() + g2.m());
        assert!(u.m() >= g1.m().max(g2.m()));
    });
}

#[test]
fn intersect_union_idempotent_and_commutative() {
    check("intersect_union_idempotent_and_commutative", CASES, |c| {
        let gs = arb_graphs(c, 2);
        let (g1, g2) = (&gs[0], &gs[1]);
        assert_eq!(g1.intersect(g2), g2.intersect(g1));
        assert_eq!(g1.union(g2), g2.union(g1));
        assert_eq!(g1.intersect(g1), g1.clone());
        assert_eq!(g1.union(g1), g1.clone());
    });
}

#[test]
fn csr_bfs_agrees_with_adjacency_bfs() {
    check("csr_bfs_agrees_with_adjacency_bfs", CASES, |c| {
        let g = arb_graph(c);
        let csr = CsrGraph::from(&g);
        for src in 0..g.n().min(4) {
            let a = bfs_distances(&g, NodeId::from_index(src));
            let b = csr.bfs(NodeId::from_index(src));
            assert_eq!(a, b);
        }
    });
}

#[test]
fn bfs_distances_are_metric_on_edges() {
    check("bfs_distances_are_metric_on_edges", CASES, |c| {
        // Adjacent nodes differ by at most 1 in distance from any source.
        let g = arb_graph(c);
        let d = bfs_distances(&g, NodeId(0));
        for e in g.edges() {
            let (da, db) = (d[e.a.index()], d[e.b.index()]);
            if da != u32::MAX && db != u32::MAX {
                assert!(da.abs_diff(db) <= 1);
            } else {
                assert_eq!(da, db, "reachability must agree across an edge");
            }
        }
    });
}

#[test]
fn shortest_path_length_matches_bfs() {
    check("shortest_path_length_matches_bfs", CASES, |c| {
        let g = arb_graph(c);
        let d = bfs_distances(&g, NodeId(0));
        for t in 1..g.n() {
            let target = NodeId::from_index(t);
            match shortest_path(&g, NodeId(0), target) {
                Some(p) => {
                    assert_eq!(p.len() as u32 - 1, d[t]);
                    for w in p.windows(2) {
                        assert!(g.has_edge(w[0], w[1]));
                    }
                }
                None => assert_eq!(d[t], u32::MAX),
            }
        }
    });
}

#[test]
fn components_partition_reachability() {
    check("components_partition_reachability", CASES, |c| {
        let g = arb_graph(c);
        let labels = components(&g);
        let d = bfs_distances(&g, NodeId(0));
        for v in 0..g.n() {
            assert_eq!(
                labels[v] == labels[0],
                d[v] != u32::MAX,
                "node {v} reachability vs component label"
            );
        }
    });
}

#[test]
fn spanning_tree_exists_iff_connected() {
    check("spanning_tree_exists_iff_connected", CASES, |c| {
        let g = arb_graph(c);
        let tree = bfs_spanning_tree(&g);
        assert_eq!(tree.is_some(), is_connected(&g));
        if let Some(t) = tree {
            assert_eq!(t.m(), g.n() - 1);
            assert!(is_connected(&t));
            assert!(g.contains_subgraph(&t));
        }
    });
}

#[test]
fn attachment_tree_always_spanning() {
    check("attachment_tree_always_spanning", CASES, |c| {
        let n = c.random_range(1usize..40);
        let seed = c.random::<u64>();
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let t = random_attachment_tree(n, &mut rng);
        assert_eq!(t.m(), n.saturating_sub(1));
        assert!(is_connected(&t));
    });
}

#[test]
fn t_interval_connectivity_downward_closed() {
    check("t_interval_connectivity_downward_closed", CASES, |c| {
        let graphs = arb_graphs(c, 4);
        let trace = TvgTrace::new(graphs.into_iter().map(Arc::new).collect());
        if let Some(max_t) = max_interval_connectivity(&trace) {
            for t in 1..=max_t {
                assert!(is_t_interval_connected(&trace, t), "t={t}");
            }
            if max_t < trace.len() {
                assert!(!is_t_interval_connected(&trace, max_t + 1));
            }
        } else {
            assert!(!is_t_interval_connected(&trace, 1));
        }
    });
}

#[test]
fn edge_distance_is_a_metric() {
    check("edge_distance_is_a_metric", CASES, |c| {
        let gs = arb_graphs(c, 3);
        let (g1, g2, g3) = (&gs[0], &gs[1], &gs[2]);
        assert_eq!(g1.edge_distance(g2), g2.edge_distance(g1));
        assert_eq!(g1.edge_distance(g1), 0);
        // Triangle inequality on the symmetric-difference metric.
        assert!(g1.edge_distance(g3) <= g1.edge_distance(g2) + g2.edge_distance(g3));
    });
}
