//! Property-based tests for the cluster substrate: clustering validity,
//! HiNet generator guarantees, the Fig. 2 lattice, and churn accounting.
//!
//! Ported to the in-tree [`hinet::rt::check`] harness; re-run a failing case
//! with the `HINET_CHECK_SEED=…` command the failure message prints.

use hinet::cluster::clustering::{cluster, ClusteringKind};
use hinet::cluster::ctvg::CtvgTrace;
use hinet::cluster::generators::{HiNetConfig, HiNetGen};
use hinet::cluster::hierarchy::ClusterId;
use hinet::cluster::reaffiliation::churn_stats;
use hinet::cluster::stability::{
    cluster_stable_in_window, has_t_interval_l_hop_connectivity, head_connectivity_in_window,
    is_head_set_t_stable, is_hierarchy_t_stable, is_t_l_hinet, l_hop_in_window, min_hinet_l,
};
use hinet::graph::graph::{Graph, GraphBuilder, NodeId};
use hinet::graph::verify::is_always_connected;
use hinet::rt::check::{check, CaseCtx};
use hinet::rt::rng::Rng;

const CASES: usize = 48;

fn graph_from(n: usize, seed: u64, p: f64) -> Graph {
    let mut b = GraphBuilder::new(n);
    let mut state = seed | 1;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    for u in 0..n {
        for v in (u + 1)..n {
            if next() < p {
                b.add_edge(NodeId::from_index(u), NodeId::from_index(v));
            }
        }
    }
    b.build()
}

fn arb_kind(c: &mut CaseCtx) -> ClusteringKind {
    *c.pick(&[
        ClusteringKind::LowestId,
        ClusteringKind::HighestDegree,
        ClusteringKind::GreedyDominating,
    ])
}

/// A valid HiNet generator config.
fn arb_hinet_config(c: &mut CaseCtx) -> HiNetConfig {
    let num_heads = c.random_range(2usize..=6);
    let l = c.random_range(1usize..=3);
    let t = c.random_range(1usize..=5);
    let reaffil_prob = c.random_range(0.0f64..=0.8);
    let rotate_heads = c.random::<bool>();
    let noise_edges = c.random_range(0usize..12);
    let seed = c.random::<u64>();
    let backbone = (num_heads - 1) * (l - 1);
    let n = (num_heads + backbone + 10).max(20);
    HiNetConfig {
        n,
        num_heads,
        theta: (num_heads * 2).min(n),
        l,
        t,
        reaffil_prob,
        rotate_heads,
        noise_edges,
        seed,
    }
}

#[test]
fn clustering_always_valid_and_one_hop() {
    check("clustering_always_valid_and_one_hop", CASES, |c| {
        let n = c.random_range(2usize..=30);
        let seed = c.random::<u64>();
        let p = c.random_range(0.0f64..0.9);
        let kind = arb_kind(c);
        let g = graph_from(n, seed, p);
        let h = cluster(kind, &g);
        assert_eq!(h.validate(&g), Ok(()));
        // 1-hop clusters: every non-head adjacent to its head.
        for u in g.nodes() {
            if !h.is_head(u) {
                let head = h.head_of(u).expect("clustered");
                assert!(g.has_edge(u, head));
            }
        }
        // Every node covered, heads self-clustered.
        for &head in h.heads() {
            assert_eq!(h.cluster_of(head), Some(ClusterId(head)));
        }
    });
}

#[test]
fn clustering_covers_with_at_most_n_clusters() {
    check("clustering_covers_with_at_most_n_clusters", CASES, |c| {
        let n = c.random_range(2usize..=30);
        let seed = c.random::<u64>();
        let p = c.random_range(0.0f64..0.9);
        let kind = arb_kind(c);
        let g = graph_from(n, seed, p);
        let h = cluster(kind, &g);
        assert!(!h.heads().is_empty());
        assert!(h.heads().len() <= n);
        // Cluster count decreases with density: a complete graph is 1 cluster.
        if g.m() == n * (n - 1) / 2 {
            assert_eq!(h.heads().len(), 1);
        }
    });
}

#[test]
fn hinet_gen_satisfies_its_declared_model() {
    check("hinet_gen_satisfies_its_declared_model", CASES, |c| {
        let cfg = arb_hinet_config(c);
        let rounds = (3 * cfg.t).max(4);
        let mut gen = HiNetGen::new(cfg);
        let trace = CtvgTrace::capture(&mut gen, rounds);
        assert_eq!(trace.validate(), Ok(()));
        assert!(is_always_connected(trace.topology()));
        assert!(
            is_t_l_hinet(&trace, cfg.t, cfg.l),
            "generator must satisfy its own (T={}, L={})",
            cfg.t,
            cfg.l
        );
        // θ bound respected.
        let stats = churn_stats(&trace);
        assert!(stats.distinct_heads <= cfg.theta);
        assert!(stats.max_concurrent_heads == cfg.num_heads);
    });
}

#[test]
fn definition_lattice_on_random_hinet_traces() {
    check("definition_lattice_on_random_hinet_traces", CASES, |c| {
        let cfg = arb_hinet_config(c);
        let rounds = (2 * cfg.t).max(3);
        let mut gen = HiNetGen::new(cfg);
        let trace = CtvgTrace::capture(&mut gen, rounds);
        let (t, l) = (cfg.t, cfg.l);
        // Fig. 2: Def 8 ⇒ Def 4 ⇒ Defs 2,3 and Def 8 ⇒ Def 7 ⇒ Defs 5,6.
        if is_t_l_hinet(&trace, t, l) {
            assert!(is_hierarchy_t_stable(&trace, t));
            assert!(has_t_interval_l_hop_connectivity(&trace, t, l));
        }
        if is_hierarchy_t_stable(&trace, t) {
            assert!(is_head_set_t_stable(&trace, t));
            let win = t.min(trace.len());
            for &head in trace.hierarchy(0).heads() {
                assert!(cluster_stable_in_window(&trace, ClusterId(head), 0, win));
            }
        }
        if has_t_interval_l_hop_connectivity(&trace, t, l) {
            let win = t.min(trace.len());
            assert!(head_connectivity_in_window(&trace, 0, win));
            assert!(l_hop_in_window(&trace, 0, win, l));
        }
    });
}

#[test]
fn min_l_never_exceeds_declared_l() {
    check("min_l_never_exceeds_declared_l", CASES, |c| {
        // Noise can shorten head distances but the stable backbone bounds
        // them above by the declared L.
        let cfg = arb_hinet_config(c);
        let rounds = (2 * cfg.t).max(2);
        let mut gen = HiNetGen::new(cfg);
        let trace = CtvgTrace::capture(&mut gen, rounds);
        let measured = min_hinet_l(&trace, cfg.t);
        assert!(measured.is_some());
        assert!(
            measured.unwrap() <= cfg.l,
            "measured {measured:?} > declared {}",
            cfg.l
        );
    });
}

#[test]
fn zero_churn_config_reports_zero_reaffiliations() {
    check(
        "zero_churn_config_reports_zero_reaffiliations",
        CASES,
        |c| {
            let seed = c.random::<u64>();
            let t = c.random_range(1usize..5);
            let cfg = HiNetConfig {
                n: 24,
                num_heads: 3,
                theta: 3,
                l: 2,
                t,
                reaffil_prob: 0.0,
                rotate_heads: false,
                noise_edges: 4,
                seed,
            };
            let mut gen = HiNetGen::new(cfg);
            let trace = CtvgTrace::capture(&mut gen, 3 * t);
            let stats = churn_stats(&trace);
            assert_eq!(stats.total_reaffiliations, 0);
            assert_eq!(stats.head_set_changes, 0);
        },
    );
}

#[test]
fn stability_verdicts_deterministic() {
    check("stability_verdicts_deterministic", CASES, |c| {
        let cfg = arb_hinet_config(c);
        let rounds = (2 * cfg.t).max(2);
        let t1 = CtvgTrace::capture(&mut HiNetGen::new(cfg), rounds);
        let t2 = CtvgTrace::capture(&mut HiNetGen::new(cfg), rounds);
        assert_eq!(
            is_t_l_hinet(&t1, cfg.t, cfg.l),
            is_t_l_hinet(&t2, cfg.t, cfg.l)
        );
        assert_eq!(min_hinet_l(&t1, cfg.t), min_hinet_l(&t2, cfg.t));
        let (s1, s2) = (churn_stats(&t1), churn_stats(&t2));
        assert_eq!(s1, s2);
    });
}
