//! Property-based tests for the cluster substrate: clustering validity,
//! HiNet generator guarantees, the Fig. 2 lattice, and churn accounting.

use hinet::cluster::clustering::{cluster, ClusteringKind};
use hinet::cluster::ctvg::CtvgTrace;
use hinet::cluster::generators::{HiNetConfig, HiNetGen};
use hinet::cluster::hierarchy::ClusterId;
use hinet::cluster::reaffiliation::churn_stats;
use hinet::cluster::stability::{
    cluster_stable_in_window, has_t_interval_l_hop_connectivity, head_connectivity_in_window,
    is_head_set_t_stable, is_hierarchy_t_stable, is_t_l_hinet, l_hop_in_window, min_hinet_l,
};
use hinet::graph::graph::{Graph, GraphBuilder, NodeId};
use hinet::graph::verify::is_always_connected;
use proptest::prelude::*;

fn graph_from(n: usize, seed: u64, p: f64) -> Graph {
    let mut b = GraphBuilder::new(n);
    let mut state = seed | 1;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    for u in 0..n {
        for v in (u + 1)..n {
            if next() < p {
                b.add_edge(NodeId::from_index(u), NodeId::from_index(v));
            }
        }
    }
    b.build()
}

fn arb_kind() -> impl Strategy<Value = ClusteringKind> {
    prop_oneof![
        Just(ClusteringKind::LowestId),
        Just(ClusteringKind::HighestDegree),
        Just(ClusteringKind::GreedyDominating),
    ]
}

/// Strategy over valid HiNet generator configs.
fn arb_hinet_config() -> impl Strategy<Value = HiNetConfig> {
    (
        2usize..=6,   // num_heads
        1usize..=3,   // l
        1usize..=5,   // t
        0.0f64..=0.8, // reaffil_prob
        any::<bool>(),
        0usize..12, // noise
        any::<u64>(),
    )
        .prop_map(|(num_heads, l, t, reaffil_prob, rotate_heads, noise_edges, seed)| {
            let backbone = (num_heads - 1) * (l - 1);
            let n = (num_heads + backbone + 10).max(20);
            HiNetConfig {
                n,
                num_heads,
                theta: (num_heads * 2).min(n),
                l,
                t,
                reaffil_prob,
                rotate_heads,
                noise_edges,
                seed,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn clustering_always_valid_and_one_hop(
        n in 2usize..=30,
        seed in any::<u64>(),
        p in 0.0f64..0.9,
        kind in arb_kind(),
    ) {
        let g = graph_from(n, seed, p);
        let h = cluster(kind, &g);
        prop_assert_eq!(h.validate(&g), Ok(()));
        // 1-hop clusters: every non-head adjacent to its head.
        for u in g.nodes() {
            if !h.is_head(u) {
                let head = h.head_of(u).expect("clustered");
                prop_assert!(g.has_edge(u, head));
            }
        }
        // Every node covered, heads self-clustered.
        for &head in h.heads() {
            prop_assert_eq!(h.cluster_of(head), Some(ClusterId(head)));
        }
    }

    #[test]
    fn clustering_covers_with_at_most_n_clusters(
        n in 2usize..=30,
        seed in any::<u64>(),
        p in 0.0f64..0.9,
        kind in arb_kind(),
    ) {
        let g = graph_from(n, seed, p);
        let h = cluster(kind, &g);
        prop_assert!(!h.heads().is_empty());
        prop_assert!(h.heads().len() <= n);
        // Cluster count decreases with density: a complete graph is 1 cluster.
        if g.m() == n * (n - 1) / 2 {
            prop_assert_eq!(h.heads().len(), 1);
        }
    }

    #[test]
    fn hinet_gen_satisfies_its_declared_model(cfg in arb_hinet_config()) {
        let rounds = (3 * cfg.t).max(4);
        let mut gen = HiNetGen::new(cfg);
        let trace = CtvgTrace::capture(&mut gen, rounds);
        prop_assert_eq!(trace.validate(), Ok(()));
        prop_assert!(is_always_connected(trace.topology()));
        prop_assert!(
            is_t_l_hinet(&trace, cfg.t, cfg.l),
            "generator must satisfy its own (T={}, L={})", cfg.t, cfg.l
        );
        // θ bound respected.
        let stats = churn_stats(&trace);
        prop_assert!(stats.distinct_heads <= cfg.theta);
        prop_assert!(stats.max_concurrent_heads == cfg.num_heads);
    }

    #[test]
    fn definition_lattice_on_random_hinet_traces(cfg in arb_hinet_config()) {
        let rounds = (2 * cfg.t).max(3);
        let mut gen = HiNetGen::new(cfg);
        let trace = CtvgTrace::capture(&mut gen, rounds);
        let (t, l) = (cfg.t, cfg.l);
        // Fig. 2: Def 8 ⇒ Def 4 ⇒ Defs 2,3 and Def 8 ⇒ Def 7 ⇒ Defs 5,6.
        if is_t_l_hinet(&trace, t, l) {
            prop_assert!(is_hierarchy_t_stable(&trace, t));
            prop_assert!(has_t_interval_l_hop_connectivity(&trace, t, l));
        }
        if is_hierarchy_t_stable(&trace, t) {
            prop_assert!(is_head_set_t_stable(&trace, t));
            let win = t.min(trace.len());
            for &head in trace.hierarchy(0).heads() {
                prop_assert!(cluster_stable_in_window(&trace, ClusterId(head), 0, win));
            }
        }
        if has_t_interval_l_hop_connectivity(&trace, t, l) {
            let win = t.min(trace.len());
            prop_assert!(head_connectivity_in_window(&trace, 0, win));
            prop_assert!(l_hop_in_window(&trace, 0, win, l));
        }
    }

    #[test]
    fn min_l_never_exceeds_declared_l(cfg in arb_hinet_config()) {
        // Noise can shorten head distances but the stable backbone bounds
        // them above by the declared L.
        let rounds = (2 * cfg.t).max(2);
        let mut gen = HiNetGen::new(cfg);
        let trace = CtvgTrace::capture(&mut gen, rounds);
        let measured = min_hinet_l(&trace, cfg.t);
        prop_assert!(measured.is_some());
        prop_assert!(measured.unwrap() <= cfg.l, "measured {measured:?} > declared {}", cfg.l);
    }

    #[test]
    fn zero_churn_config_reports_zero_reaffiliations(
        seed in any::<u64>(),
        t in 1usize..5,
    ) {
        let cfg = HiNetConfig {
            n: 24,
            num_heads: 3,
            theta: 3,
            l: 2,
            t,
            reaffil_prob: 0.0,
            rotate_heads: false,
            noise_edges: 4,
            seed,
        };
        let mut gen = HiNetGen::new(cfg);
        let trace = CtvgTrace::capture(&mut gen, 3 * t);
        let stats = churn_stats(&trace);
        prop_assert_eq!(stats.total_reaffiliations, 0);
        prop_assert_eq!(stats.head_set_changes, 0);
    }

    #[test]
    fn stability_verdicts_deterministic(cfg in arb_hinet_config()) {
        let rounds = (2 * cfg.t).max(2);
        let t1 = CtvgTrace::capture(&mut HiNetGen::new(cfg), rounds);
        let t2 = CtvgTrace::capture(&mut HiNetGen::new(cfg), rounds);
        prop_assert_eq!(is_t_l_hinet(&t1, cfg.t, cfg.l), is_t_l_hinet(&t2, cfg.t, cfg.l));
        prop_assert_eq!(min_hinet_l(&t1, cfg.t), min_hinet_l(&t2, cfg.t));
        let (s1, s2) = (churn_stats(&t1), churn_stats(&t2));
        prop_assert_eq!(s1, s2);
    }
}
